"""The simulated cloud API.

One :class:`CloudAPI` per *principal* (Asgard, the diagnosis service, the
interfering second team, ...), all sharing one :class:`CloudState`.  Every
call is rate-limited against the shared account window, audited to
CloudTrail, and — for describe-calls — served through the eventually
consistent view unless the caller explicitly asks for a consistent read.

The API is synchronous with respect to the simulation: latency is applied
by :class:`TimedCloudClient`, which simulation processes use to both pay
the virtual time cost and get the result.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cloud.cloudtrail import CloudTrail
from repro.cloud.consistency import ConsistencyModel, EventuallyConsistentView
from repro.cloud.errors import (
    LimitExceeded,
    MalformedRequest,
    ResourceNotFound,
    ServiceUnavailable,
    Throttling,
)
from repro.cloud.resources import (
    AmiImage,
    AutoScalingGroup,
    Instance,
    InstanceState,
    KeyPair,
    LaunchConfiguration,
    LoadBalancer,
    SecurityGroup,
)
from repro.cloud.state import CloudState
from repro.sim.latency import LatencyModel, aws_api_latency


@dataclasses.dataclass
class ApiCallRecord:
    """In-memory record of an API call (immediate, unlike CloudTrail)."""

    time: float
    name: str
    principal: str
    params: dict
    error_code: str | None


class CloudAPI:
    """Per-principal facade over the shared region state."""

    def __init__(
        self,
        engine,
        state: CloudState,
        trail: CloudTrail | None = None,
        principal: str = "default",
        consistency: ConsistencyModel | None = None,
    ) -> None:
        self.engine = engine
        self.state = state
        self.trail = trail
        self.principal = principal
        self.view = EventuallyConsistentView(state, engine.clock, consistency)
        self.calls: list[ApiCallRecord] = []
        self._listeners: list[_t.Callable[[ApiCallRecord], None]] = []

    def with_principal(self, principal: str) -> "CloudAPI":
        """A sibling API object sharing state but audited as ``principal``."""
        api = CloudAPI(self.engine, self.state, self.trail, principal, self.view.model)
        return api

    def subscribe(self, listener: _t.Callable[[ApiCallRecord], None]) -> None:
        """Register a callback invoked after every call by this principal."""
        self._listeners.append(listener)

    # -- plumbing ----------------------------------------------------------

    def _enter(self, name: str, params: dict) -> None:
        if not self.state.rate_limiter.try_acquire(self.engine.now):
            self._audit(name, params, error_code="Throttling")
            raise Throttling(f"rate limit exceeded for {name}")

    def _audit(self, name: str, params: dict, error_code: str | None = None) -> None:
        record = ApiCallRecord(self.engine.now, name, self.principal, dict(params), error_code)
        self.calls.append(record)
        if self.trail is not None:
            self.trail.record(name, self.principal, params, error_code)
        for listener in self._listeners:
            listener(record)

    def _call(self, name: str, params: dict, body: _t.Callable[[], _t.Any]) -> _t.Any:
        """Run one API call: rate limit, execute, audit outcome."""
        self._enter(name, params)
        try:
            result = body()
        except Exception as exc:
            code = getattr(exc, "code", "InternalError")
            self._audit(name, params, error_code=code)
            raise
        self._audit(name, params)
        return result

    def _read(self, kind: str, identifier: str, consistent: bool) -> dict:
        """Describe one resource, honouring eventual consistency.

        Returns the shared frozen view — read-only; callers needing a
        mutable dict use ``view.thaw()``.
        """
        if consistent:
            view = self.view.read_consistent(kind, identifier)
        else:
            view = self.view.read(kind, identifier)
        if view is None:
            raise ResourceNotFound.of(kind, identifier)
        return view

    # -- EC2: images -------------------------------------------------------

    def register_image(self, name: str, version: str, image_id: str | None = None) -> dict:
        def body() -> dict:
            iid = image_id or self.state.new_id("ami")
            image = AmiImage(image_id=iid, name=name, version=version)
            self.state.put("ami", iid, image, self.engine.now)
            return image.describe()

        return self._call("RegisterImage", {"Name": name, "Version": version}, body)

    def describe_image(self, image_id: str, consistent: bool = False) -> dict:
        return self._call(
            "DescribeImages",
            {"ImageId": image_id},
            lambda: self._read("ami", image_id, consistent),
        )

    def deregister_image(self, image_id: str) -> None:
        def body() -> None:
            image = self.state.get("ami", image_id)
            image.available = False
            self.state.delete("ami", image_id, self.engine.now)

        self._call("DeregisterImage", {"ImageId": image_id}, body)

    # -- EC2: security groups / key pairs -----------------------------------

    def create_security_group(self, group_name: str, description: str = "") -> dict:
        def body() -> dict:
            gid = self.state.new_id("security_group")
            group = SecurityGroup(group_id=gid, group_name=group_name, description=description)
            self.state.put("security_group", group_name, group, self.engine.now)
            return group.describe()

        return self._call("CreateSecurityGroup", {"GroupName": group_name}, body)

    def describe_security_group(self, group_name: str, consistent: bool = False) -> dict:
        return self._call(
            "DescribeSecurityGroups",
            {"GroupName": group_name},
            lambda: self._read("security_group", group_name, consistent),
        )

    def delete_security_group(self, group_name: str) -> None:
        def body() -> None:
            self.state.get("security_group", group_name)
            self.state.delete("security_group", group_name, self.engine.now)

        self._call("DeleteSecurityGroup", {"GroupName": group_name}, body)

    def create_key_pair(self, key_name: str) -> dict:
        def body() -> dict:
            fingerprint = f"fp:{abs(hash(key_name)) % 10**12:012d}"
            key = KeyPair(key_name=key_name, fingerprint=fingerprint)
            self.state.put("key_pair", key_name, key, self.engine.now)
            return key.describe()

        return self._call("CreateKeyPair", {"KeyName": key_name}, body)

    def describe_key_pair(self, key_name: str, consistent: bool = False) -> dict:
        return self._call(
            "DescribeKeyPairs",
            {"KeyName": key_name},
            lambda: self._read("key_pair", key_name, consistent),
        )

    def delete_key_pair(self, key_name: str) -> None:
        def body() -> None:
            self.state.get("key_pair", key_name)
            self.state.delete("key_pair", key_name, self.engine.now)

        self._call("DeleteKeyPair", {"KeyName": key_name}, body)

    # -- EC2: instances ------------------------------------------------------

    def describe_instance(self, instance_id: str, consistent: bool = False) -> dict:
        return self._call(
            "DescribeInstances",
            {"InstanceId": instance_id},
            lambda: self._read("instance", instance_id, consistent),
        )

    def describe_instances_in_asg(self, asg_name: str, consistent: bool = True) -> list[dict]:
        """All non-terminated instances attached to an ASG.

        Served consistently by default: this is the fleet-membership query
        the ASG controller itself relies on.
        """

        def body() -> list[dict]:
            asg = self.state.get("auto_scaling_group", asg_name)
            result = []
            for iid in asg.instance_ids:
                if self.state.exists("instance", iid):
                    if consistent:
                        result.append(self.state.get("instance", iid).describe())
                    else:
                        view = self.view.read("instance", iid)
                        if view is not None:
                            result.append(view)
            return result

        return self._call("DescribeInstances", {"AutoScalingGroupName": asg_name}, body)

    def terminate_instance(self, instance_id: str) -> dict:
        """Begin terminating an instance (async shutdown)."""
        return self._call(
            "TerminateInstances",
            {"InstanceId": instance_id},
            lambda: self._begin_termination(instance_id),
        )

    def _begin_termination(self, instance_id: str) -> dict:
        instance = self.state.get("instance", instance_id)
        if instance.state == InstanceState.TERMINATED:
            return instance.describe()
        instance.state = InstanceState.SHUTTING_DOWN
        instance.terminate_time = self.engine.now
        self.state.record_write("instance", instance_id, self.engine.now)
        self.engine.process(self._finish_termination(instance_id), name=f"terminate-{instance_id}")
        return instance.describe()

    def _finish_termination(self, instance_id: str) -> _t.Generator:
        yield self.engine.timeout(4.0)
        if not self.state.exists("instance", instance_id):
            return
        instance = self.state.get("instance", instance_id)
        instance.state = InstanceState.TERMINATED
        self.state.record_write("instance", instance_id, self.engine.now)
        # Drop from any ELB registration.
        for elb in self.state.load_balancers.values():
            if instance_id in elb.registered_instances:
                elb.registered_instances.remove(instance_id)
                self.state.record_write("load_balancer", elb.name, self.engine.now)

    # -- AutoScaling: launch configurations ----------------------------------

    def create_launch_configuration(
        self,
        name: str,
        image_id: str,
        instance_type: str,
        key_name: str,
        security_groups: list[str],
    ) -> dict:
        def body() -> dict:
            if self.state.exists("launch_configuration", name):
                raise MalformedRequest(f"launch configuration {name!r} already exists")
            lc = LaunchConfiguration(
                name=name,
                image_id=image_id,
                instance_type=instance_type,
                key_name=key_name,
                security_groups=list(security_groups),
                created_at=self.engine.now,
            )
            self.state.put("launch_configuration", name, lc, self.engine.now)
            return lc.describe()

        return self._call(
            "CreateLaunchConfiguration",
            {"LaunchConfigurationName": name, "ImageId": image_id},
            body,
        )

    def describe_launch_configuration(self, name: str, consistent: bool = False) -> dict:
        return self._call(
            "DescribeLaunchConfigurations",
            {"LaunchConfigurationName": name},
            lambda: self._read("launch_configuration", name, consistent),
        )

    def update_launch_configuration(self, name: str, **changes) -> dict:
        """Non-standard but convenient mutation hook (used by fault
        injection to model 'another team changed the LC')."""

        def body() -> dict:
            lc = self.state.get("launch_configuration", name)
            for field, value in changes.items():
                if not hasattr(lc, field):
                    raise MalformedRequest(f"unknown launch configuration field {field!r}")
                setattr(lc, field, value)
            self.state.record_write("launch_configuration", name, self.engine.now)
            return lc.describe()

        return self._call(
            "UpdateLaunchConfiguration", {"LaunchConfigurationName": name, **changes}, body
        )

    def delete_launch_configuration(self, name: str) -> None:
        def body() -> None:
            self.state.get("launch_configuration", name)
            self.state.delete("launch_configuration", name, self.engine.now)

        self._call("DeleteLaunchConfiguration", {"LaunchConfigurationName": name}, body)

    # -- AutoScaling: groups ---------------------------------------------------

    def create_auto_scaling_group(
        self,
        name: str,
        launch_configuration_name: str,
        min_size: int,
        max_size: int,
        desired_capacity: int,
        load_balancer_names: list[str] | None = None,
    ) -> dict:
        def body() -> dict:
            if self.state.exists("auto_scaling_group", name):
                raise MalformedRequest(f"auto scaling group {name!r} already exists")
            if not 0 <= min_size <= desired_capacity <= max_size:
                raise MalformedRequest(
                    f"sizes must satisfy min<=desired<=max, got {min_size}/{desired_capacity}/{max_size}"
                )
            self.state.get("launch_configuration", launch_configuration_name)
            asg = AutoScalingGroup(
                name=name,
                launch_configuration_name=launch_configuration_name,
                min_size=min_size,
                max_size=max_size,
                desired_capacity=desired_capacity,
                load_balancer_names=list(load_balancer_names or []),
            )
            self.state.put("auto_scaling_group", name, asg, self.engine.now)
            return asg.describe()

        return self._call("CreateAutoScalingGroup", {"AutoScalingGroupName": name}, body)

    def describe_auto_scaling_group(self, name: str, consistent: bool = False) -> dict:
        return self._call(
            "DescribeAutoScalingGroups",
            {"AutoScalingGroupName": name},
            lambda: self._read("auto_scaling_group", name, consistent),
        )

    def update_auto_scaling_group(self, name: str, **changes) -> dict:
        def body() -> dict:
            asg = self.state.get("auto_scaling_group", name)
            if "launch_configuration_name" in changes:
                self.state.get("launch_configuration", changes["launch_configuration_name"])
            for field, value in changes.items():
                if not hasattr(asg, field):
                    raise MalformedRequest(f"unknown auto scaling group field {field!r}")
                setattr(asg, field, value)
            if not 0 <= asg.min_size <= asg.desired_capacity <= asg.max_size:
                raise MalformedRequest("sizes must satisfy min<=desired<=max")
            self.state.record_write("auto_scaling_group", name, self.engine.now)
            return asg.describe()

        return self._call("UpdateAutoScalingGroup", {"AutoScalingGroupName": name, **changes}, body)

    def set_desired_capacity(self, name: str, desired_capacity: int) -> dict:
        return self.update_auto_scaling_group(name, desired_capacity=desired_capacity)

    def suspend_processes(self, name: str, processes: list[str]) -> None:
        def body() -> None:
            asg = self.state.get("auto_scaling_group", name)
            asg.suspended_processes.update(processes)
            self.state.record_write("auto_scaling_group", name, self.engine.now)

        self._call("SuspendProcesses", {"AutoScalingGroupName": name, "Processes": processes}, body)

    def resume_processes(self, name: str, processes: list[str]) -> None:
        def body() -> None:
            asg = self.state.get("auto_scaling_group", name)
            asg.suspended_processes.difference_update(processes)
            self.state.record_write("auto_scaling_group", name, self.engine.now)

        self._call("ResumeProcesses", {"AutoScalingGroupName": name, "Processes": processes}, body)

    def terminate_instance_in_auto_scaling_group(
        self, instance_id: str, decrement_desired_capacity: bool = False
    ) -> dict:
        """Asgard's per-instance replacement primitive."""

        def body() -> dict:
            instance = self.state.get("instance", instance_id)
            asg_name = instance.asg_name
            if asg_name and self.state.exists("auto_scaling_group", asg_name):
                asg = self.state.get("auto_scaling_group", asg_name)
                if instance_id in asg.instance_ids:
                    asg.instance_ids.remove(instance_id)
                if decrement_desired_capacity:
                    asg.desired_capacity = max(asg.min_size, asg.desired_capacity - 1)
                self.state.record_write("auto_scaling_group", asg_name, self.engine.now)
            return self._begin_termination(instance_id)

        return self._call(
            "TerminateInstanceInAutoScalingGroup", {"InstanceId": instance_id}, body
        )

    # -- ELB ---------------------------------------------------------------

    def create_load_balancer(self, name: str) -> dict:
        def body() -> dict:
            if self.state.exists("load_balancer", name):
                raise MalformedRequest(f"load balancer {name!r} already exists")
            elb = LoadBalancer(name=name)
            self.state.put("load_balancer", name, elb, self.engine.now)
            return elb.describe()

        return self._call("CreateLoadBalancer", {"LoadBalancerName": name}, body)

    def describe_load_balancer(self, name: str, consistent: bool = False) -> dict:
        return self._call(
            "DescribeLoadBalancers",
            {"LoadBalancerName": name},
            lambda: self._read("load_balancer", name, consistent),
        )

    def delete_load_balancer(self, name: str) -> None:
        def body() -> None:
            self.state.get("load_balancer", name)
            self.state.delete("load_balancer", name, self.engine.now)

        self._call("DeleteLoadBalancer", {"LoadBalancerName": name}, body)

    def register_instances_with_load_balancer(self, name: str, instance_ids: list[str]) -> dict:
        def body() -> dict:
            elb = self.state.get("load_balancer", name)
            if not elb.available:
                raise ServiceUnavailable(f"load balancer {name!r} is unavailable")
            for iid in instance_ids:
                self.state.get("instance", iid)
                if iid not in elb.registered_instances:
                    elb.registered_instances.append(iid)
            self.state.record_write("load_balancer", name, self.engine.now)
            return elb.describe()

        return self._call(
            "RegisterInstancesWithLoadBalancer",
            {"LoadBalancerName": name, "Instances": list(instance_ids)},
            body,
        )

    def deregister_instances_from_load_balancer(self, name: str, instance_ids: list[str]) -> dict:
        def body() -> dict:
            elb = self.state.get("load_balancer", name)
            if not elb.available:
                raise ServiceUnavailable(f"load balancer {name!r} is unavailable")
            for iid in instance_ids:
                if iid in elb.registered_instances:
                    elb.registered_instances.remove(iid)
            self.state.record_write("load_balancer", name, self.engine.now)
            return elb.describe()

        return self._call(
            "DeregisterInstancesFromLoadBalancer",
            {"LoadBalancerName": name, "Instances": list(instance_ids)},
            body,
        )

    def describe_scaling_activities(self, asg_name: str, since: float = 0.0) -> list:
        """Scaling activities for one ASG since a given time.

        Diagnosis tests consult this to see whether the ASG's launch
        attempts are failing (and with which error code).
        """

        def body() -> list:
            return [
                a
                for a in self.state.scaling_activities
                if a.asg_name == asg_name and a.time >= since
            ]

        return self._call("DescribeScalingActivities", {"AutoScalingGroupName": asg_name}, body)

    def describe_instance_health(self, name: str) -> list[dict]:
        def body() -> list[dict]:
            elb = self.state.get("load_balancer", name)
            if not elb.available:
                raise ServiceUnavailable(f"load balancer {name!r} is unavailable")
            result = []
            for iid in elb.registered_instances:
                healthy = False
                if self.state.exists("instance", iid):
                    instance = self.state.get("instance", iid)
                    healthy = instance.state == InstanceState.RUNNING and instance.healthy
                result.append(
                    {"InstanceId": iid, "State": "InService" if healthy else "OutOfService"}
                )
            return result

        return self._call("DescribeInstanceHealth", {"LoadBalancerName": name}, body)


class TimedCloudClient:
    """Applies virtual latency around :class:`CloudAPI` calls.

    Simulation processes use ``result = yield client.call("describe_image",
    image_id)``: the latency is paid *before* the call executes, modelling
    request transit + service time.
    """

    def __init__(self, engine, api: CloudAPI, latency: LatencyModel | None = None) -> None:
        self.engine = engine
        self.api = api
        self.latency = latency or aws_api_latency()

    def call(self, method: str, *args, **kwargs):
        """Generator: yield from a process, returns the API result."""
        return self.engine.process(self._invoke(method, args, kwargs), name=f"api-{method}")

    def _invoke(self, method: str, args: tuple, kwargs: dict) -> _t.Generator:
        yield self.engine.timeout(self.latency.sample())
        bound = getattr(self.api, method)
        return bound(*args, **kwargs)
