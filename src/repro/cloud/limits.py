"""Account limits and API rate limiting.

Two of the paper's observed failure classes originate here:

- the shared AWS account's *instance limit* being exhausted by the second,
  independent team (wrong-diagnosis class 4 in §VI.A);
- API *call limits imposed on a specific region of a single account*
  (§V.A), which surface as ``Throttling`` errors the consistent-API layer
  must absorb with exponential retry.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class AccountLimits:
    """Per-region account quota configuration."""

    #: Maximum simultaneously active (pending or running) instances.
    max_instances: int = 40
    #: Maximum API calls within any sliding window of ``rate_window`` s.
    max_calls_per_window: int = 1000
    rate_window: float = 1.0


class RateLimiter:
    """Sliding-window API rate limiter.

    Deterministic and cheap: keeps only call timestamps inside the current
    window.  Shared between all users of the account — this is what lets a
    simulated 'second team' starve the primary team of API throughput.
    """

    def __init__(self, limits: AccountLimits) -> None:
        self.limits = limits
        self._timestamps: list[float] = []

    def try_acquire(self, now: float) -> bool:
        """Record one call at ``now``; False means the caller is throttled."""
        window_start = now - self.limits.rate_window
        self._timestamps = [t for t in self._timestamps if t > window_start]
        if len(self._timestamps) >= self.limits.max_calls_per_window:
            return False
        self._timestamps.append(now)
        return True

    def in_flight(self, now: float) -> int:
        """Number of calls inside the current window (for metrics)."""
        window_start = now - self.limits.rate_window
        return sum(1 for t in self._timestamps if t > window_start)
