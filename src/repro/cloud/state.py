"""Authoritative region state plus per-resource write history.

``CloudState`` is the single source of truth the API mutates.  Every
mutation also appends a timestamped snapshot to the resource's history;
the eventual-consistency layer serves *reads* from that history, possibly
lagging behind the latest write — exactly the behaviour that forced the
paper to build a "consistent AWS API layer" with retries (§IV).

History is copy-on-write: each snapshot is a :class:`~repro.cloud.freeze.FrozenView`
appended *by reference*, with sub-structures interned so identical values
(state dicts, unchanged security-group lists) are one shared object
region-wide.  ``view_at`` returns the frozen view directly — a stale read
costs one bisect and zero copying — and callers that need a scratch dict
use :func:`~repro.cloud.freeze.thaw`.  A region-wide write log (consumed
by the Edda-style monitor) makes per-tick snapshot work proportional to
writes instead of region size.
"""

from __future__ import annotations

import itertools
import typing as _t
from bisect import bisect_right

from repro.cloud.errors import ResourceNotFound
from repro.cloud.freeze import FrozenView, freeze, thaw
from repro.cloud.limits import AccountLimits, RateLimiter
from repro.cloud.resources import (
    AmiImage,
    AutoScalingGroup,
    Instance,
    InstanceState,
    KeyPair,
    LaunchConfiguration,
    LoadBalancer,
    SecurityGroup,
)

KINDS = (
    "ami",
    "security_group",
    "key_pair",
    "launch_configuration",
    "instance",
    "load_balancer",
    "auto_scaling_group",
)


class CloudState:
    """All resources in one simulated region, with write history."""

    def __init__(self, limits: AccountLimits | None = None, region: str = "ap-southeast-2") -> None:
        self.region = region
        self.limits = limits or AccountLimits()
        self.rate_limiter = RateLimiter(self.limits)
        self.amis: dict[str, AmiImage] = {}
        self.security_groups: dict[str, SecurityGroup] = {}
        self.key_pairs: dict[str, KeyPair] = {}
        self.launch_configurations: dict[str, LaunchConfiguration] = {}
        self.instances: dict[str, Instance] = {}
        self.load_balancers: dict[str, LoadBalancer] = {}
        self.auto_scaling_groups: dict[str, AutoScalingGroup] = {}
        #: (kind, id) -> parallel (write_times, frozen views) arrays; a
        #: ``None`` view is a tombstone.  Parallel arrays keep ``view_at``
        #: a single bisect over a flat float list.
        self._history: dict[tuple[str, str], tuple[list[float], list[FrozenView | None]]] = {}
        #: Intern pool: equal frozen sub-structures resolve to one object.
        self._intern: dict = {}
        #: Append-only (kind, id) write log; the monitor's delta source.
        self._write_log: list[tuple[str, str]] = []
        #: Data-plane counters (always on — they are two dict increments
        #: per write/read): snapshot sharing and stale/fresh read mix.
        self.data_plane_counters: dict[str, int] = {}
        #: Optional obs MetricsRegistry mirror (attached by the testbed).
        self._metrics = None
        #: Scaling activities appended by the ASG controller; read through
        #: the API's DescribeScalingActivities.
        self.scaling_activities: list = []
        self._id_counters = {kind: itertools.count(1) for kind in KINDS}

    def attach_obs(self, obs) -> None:
        """Mirror data-plane counters into an observability registry."""
        self._metrics = obs.metrics if obs is not None and obs.enabled else None

    def _count(self, name: str) -> None:
        self.data_plane_counters[name] = self.data_plane_counters.get(name, 0) + 1
        if self._metrics is not None:
            self._metrics.inc(name)

    def _count_many(self, name: str, amount: int) -> None:
        if amount <= 0:
            return
        self.data_plane_counters[name] = self.data_plane_counters.get(name, 0) + amount
        if self._metrics is not None:
            self._metrics.inc(name, amount)

    # -- registries ------------------------------------------------------

    def _registry(self, kind: str) -> dict:
        return {
            "ami": self.amis,
            "security_group": self.security_groups,
            "key_pair": self.key_pairs,
            "launch_configuration": self.launch_configurations,
            "instance": self.instances,
            "load_balancer": self.load_balancers,
            "auto_scaling_group": self.auto_scaling_groups,
        }[kind]

    def get(self, kind: str, identifier: str):
        """Authoritative (strongly consistent) lookup; raises if missing."""
        registry = self._registry(kind)
        if identifier not in registry:
            raise ResourceNotFound.of(kind, identifier)
        return registry[identifier]

    def exists(self, kind: str, identifier: str) -> bool:
        return identifier in self._registry(kind)

    def new_id(self, kind: str) -> str:
        prefix = {
            "ami": "ami-",
            "security_group": "sg-",
            "key_pair": "key-",
            "launch_configuration": "lc-",
            "instance": "i-",
            "load_balancer": "elb-",
            "auto_scaling_group": "asg-",
        }[kind]
        return f"{prefix}{next(self._id_counters[kind]):08x}"

    # -- mutation + history ----------------------------------------------

    def put(self, kind: str, identifier: str, resource, now: float) -> None:
        """Insert or replace a resource and record the write."""
        self._registry(kind)[identifier] = resource
        self.record_write(kind, identifier, now)

    def delete(self, kind: str, identifier: str, now: float) -> None:
        """Remove a resource and record a tombstone."""
        registry = self._registry(kind)
        if identifier not in registry:
            raise ResourceNotFound.of(kind, identifier)
        del registry[identifier]
        self._append_history(kind, identifier, now, None)

    def record_write(self, kind: str, identifier: str, now: float) -> None:
        """Snapshot a resource's current described form into its history.

        Call after any in-place mutation so eventually-consistent readers
        observe the change only once their lag elapses.  The snapshot is
        frozen once and appended by reference — no deep copy, and equal
        sub-structures are interned across the whole region.
        """
        resource = self._registry(kind).get(identifier)
        snapshot = (
            freeze(resource.describe(), self._intern, self._count)
            if resource is not None
            else None
        )
        self._append_history(kind, identifier, now, snapshot)

    def _append_history(
        self, kind: str, identifier: str, now: float, snapshot: FrozenView | None
    ) -> None:
        key = (kind, identifier)
        entry = self._history.get(key)
        if entry is None:
            entry = self._history[key] = ([], [])
        entry[0].append(now)
        entry[1].append(snapshot)
        self._write_log.append(key)

    def history(self, kind: str, identifier: str) -> list[tuple[float, FrozenView | None]]:
        times, views = self._history.get((kind, identifier), ((), ()))
        return list(zip(times, views))

    def view_at(self, kind: str, identifier: str, as_of: float) -> FrozenView | None:
        """The resource's described form as of ``as_of`` (None = absent).

        A resource never written before ``as_of`` is absent; a tombstone
        makes it absent again.  This is the primitive the consistency
        layer builds stale reads on.  Returns the frozen history view
        itself — zero copying; mutate through ``thaw()`` only.
        """
        entry = self._history.get((kind, identifier))
        if entry is None:
            return None
        times, views = entry
        index = bisect_right(times, as_of) - 1
        return views[index] if index >= 0 else None

    def latest_view(self, kind: str, identifier: str) -> FrozenView | None:
        """The most recent history snapshot (None = absent/tombstoned).

        Every mutation path records a write in the same virtual instant,
        so this always equals a live ``describe()`` — without allocating
        one.
        """
        entry = self._history.get((kind, identifier))
        if entry is None:
            return None
        return entry[1][-1]

    def last_write_at(self, kind: str, identifier: str) -> float | None:
        """Time of the most recent write (including tombstones), if any."""
        entry = self._history.get((kind, identifier))
        if entry is None:
            return None
        return entry[0][-1]

    # -- write log (monitor delta source) ---------------------------------

    def write_seq(self) -> int:
        """Monotone position in the region-wide write log."""
        return len(self._write_log)

    def writes_since(self, position: int) -> list[tuple[str, str]]:
        """(kind, id) pairs written at or after log ``position``."""
        return self._write_log[position:]

    # -- aggregates ------------------------------------------------------

    def active_instance_count(self) -> int:
        """Instances counting against the account limit."""
        return sum(1 for i in self.instances.values() if i.state.is_active())

    def running_instances(self, asg_name: str | None = None) -> list[Instance]:
        result = [i for i in self.instances.values() if i.state == InstanceState.RUNNING]
        if asg_name is not None:
            result = [i for i in result if i.asg_name == asg_name]
        return sorted(result, key=lambda i: i.instance_id)

    def __repr__(self) -> str:
        counts = ", ".join(f"{kind}={len(self._registry(kind))}" for kind in KINDS)
        return f"CloudState({self.region}: {counts})"


def snapshot_of(resources: _t.Iterable) -> list[FrozenView]:
    """Describe a collection of resources as frozen views.

    The seed returned live ``describe()`` dicts whose nested structures
    (e.g. a security group's ingress-rule dicts) aliased authoritative
    state — a caller mutating its "snapshot" silently corrupted the
    region.  Frozen views make that impossible; callers needing a mutable
    copy use :func:`~repro.cloud.freeze.thaw`.
    """
    return [freeze(r.describe()) for r in resources]


__all__ = ["KINDS", "CloudState", "FrozenView", "freeze", "snapshot_of", "thaw"]
