"""Authoritative region state plus per-resource write history.

``CloudState`` is the single source of truth the API mutates.  Every
mutation also appends a timestamped snapshot to the resource's history;
the eventual-consistency layer serves *reads* from that history, possibly
lagging behind the latest write — exactly the behaviour that forced the
paper to build a "consistent AWS API layer" with retries (§IV).
"""

from __future__ import annotations

import copy
import itertools
import typing as _t

from repro.cloud.errors import ResourceNotFound
from repro.cloud.limits import AccountLimits, RateLimiter
from repro.cloud.resources import (
    AmiImage,
    AutoScalingGroup,
    Instance,
    InstanceState,
    KeyPair,
    LaunchConfiguration,
    LoadBalancer,
    SecurityGroup,
)

KINDS = (
    "ami",
    "security_group",
    "key_pair",
    "launch_configuration",
    "instance",
    "load_balancer",
    "auto_scaling_group",
)


class CloudState:
    """All resources in one simulated region, with write history."""

    def __init__(self, limits: AccountLimits | None = None, region: str = "ap-southeast-2") -> None:
        self.region = region
        self.limits = limits or AccountLimits()
        self.rate_limiter = RateLimiter(self.limits)
        self.amis: dict[str, AmiImage] = {}
        self.security_groups: dict[str, SecurityGroup] = {}
        self.key_pairs: dict[str, KeyPair] = {}
        self.launch_configurations: dict[str, LaunchConfiguration] = {}
        self.instances: dict[str, Instance] = {}
        self.load_balancers: dict[str, LoadBalancer] = {}
        self.auto_scaling_groups: dict[str, AutoScalingGroup] = {}
        #: (kind, id) -> list of (write_time, describe-dict or None=deleted)
        self._history: dict[tuple[str, str], list[tuple[float, dict | None]]] = {}
        #: Scaling activities appended by the ASG controller; read through
        #: the API's DescribeScalingActivities.
        self.scaling_activities: list = []
        self._id_counters = {kind: itertools.count(1) for kind in KINDS}

    # -- registries ------------------------------------------------------

    def _registry(self, kind: str) -> dict:
        return {
            "ami": self.amis,
            "security_group": self.security_groups,
            "key_pair": self.key_pairs,
            "launch_configuration": self.launch_configurations,
            "instance": self.instances,
            "load_balancer": self.load_balancers,
            "auto_scaling_group": self.auto_scaling_groups,
        }[kind]

    def get(self, kind: str, identifier: str):
        """Authoritative (strongly consistent) lookup; raises if missing."""
        registry = self._registry(kind)
        if identifier not in registry:
            raise ResourceNotFound.of(kind, identifier)
        return registry[identifier]

    def exists(self, kind: str, identifier: str) -> bool:
        return identifier in self._registry(kind)

    def new_id(self, kind: str) -> str:
        prefix = {
            "ami": "ami-",
            "security_group": "sg-",
            "key_pair": "key-",
            "launch_configuration": "lc-",
            "instance": "i-",
            "load_balancer": "elb-",
            "auto_scaling_group": "asg-",
        }[kind]
        return f"{prefix}{next(self._id_counters[kind]):08x}"

    # -- mutation + history ----------------------------------------------

    def put(self, kind: str, identifier: str, resource, now: float) -> None:
        """Insert or replace a resource and record the write."""
        self._registry(kind)[identifier] = resource
        self.record_write(kind, identifier, now)

    def delete(self, kind: str, identifier: str, now: float) -> None:
        """Remove a resource and record a tombstone."""
        registry = self._registry(kind)
        if identifier not in registry:
            raise ResourceNotFound.of(kind, identifier)
        del registry[identifier]
        self._history.setdefault((kind, identifier), []).append((now, None))

    def record_write(self, kind: str, identifier: str, now: float) -> None:
        """Snapshot a resource's current described form into its history.

        Call after any in-place mutation so eventually-consistent readers
        observe the change only once their lag elapses.
        """
        resource = self._registry(kind).get(identifier)
        snapshot = copy.deepcopy(resource.describe()) if resource is not None else None
        self._history.setdefault((kind, identifier), []).append((now, snapshot))

    def history(self, kind: str, identifier: str) -> list[tuple[float, dict | None]]:
        return list(self._history.get((kind, identifier), []))

    def view_at(self, kind: str, identifier: str, as_of: float) -> dict | None:
        """The resource's described form as of ``as_of`` (None = absent).

        A resource never written before ``as_of`` is absent; a tombstone
        makes it absent again.  This is the primitive the consistency
        layer builds stale reads on.
        """
        snapshot: dict | None = None
        for write_time, view in self._history.get((kind, identifier), []):
            if write_time <= as_of:
                snapshot = view
            else:
                break
        return copy.deepcopy(snapshot) if snapshot is not None else None

    # -- aggregates ------------------------------------------------------

    def active_instance_count(self) -> int:
        """Instances counting against the account limit."""
        return sum(1 for i in self.instances.values() if i.state.is_active())

    def running_instances(self, asg_name: str | None = None) -> list[Instance]:
        result = [i for i in self.instances.values() if i.state == InstanceState.RUNNING]
        if asg_name is not None:
            result = [i for i in result if i.asg_name == asg_name]
        return sorted(result, key=lambda i: i.instance_id)

    def __repr__(self) -> str:
        counts = ", ".join(f"{kind}={len(self._registry(kind))}" for kind in KINDS)
        return f"CloudState({self.region}: {counts})"


def snapshot_of(resources: _t.Iterable) -> list[dict]:
    """Describe a collection of resources (helper for monitors)."""
    return [r.describe() for r in resources]
