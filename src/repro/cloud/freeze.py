"""Copy-on-write snapshot primitives for the cloud data plane.

The seed stored region history with ``copy.deepcopy`` at three hot sites:
every mutation deep-copied its ``describe()`` dict *into* history, every
eventually-consistent read deep-copied it back *out*, and the Edda-style
monitor deep-copied the entire region on every poll tick.  The paper's
§IV consistency layer (``call_until`` polling) hammers exactly those
paths, so the deep copies dominated campaign time once pattern matching
became cheap.

This module replaces them with structurally shared, immutable views:

- :class:`FrozenView` — a read-only ``dict`` subclass.  Every mutating
  method raises :class:`FrozenMutationError`; readers use it exactly like
  the plain describe-dict it replaces (equality, iteration, ``json.dump``
  and pickling all behave identically).
- :class:`FrozenList` — the matching read-only ``list`` subclass, used
  for nested sequences (``SecurityGroups``, ``Instances``, ...).  Unlike
  a tuple it still compares equal to plain lists, so no caller notices.
- :func:`freeze` — recursively convert a describe-dict into frozen form,
  optionally *interning* sub-structures so identical values (the
  ``{"Name": "running"}`` state dicts, unchanged security-group lists,
  repeated instance wrappers) are one shared object region-wide.
- :func:`thaw` — the explicit escape hatch: a deep, mutable copy for the
  rare caller that genuinely needs to edit a view.

The contract: anything handed out as a snapshot/stale read is frozen and
shared by reference; mutation attempts fail loudly instead of silently
corrupting history; callers that need a scratch dict call ``thaw()``.
"""

from __future__ import annotations

import typing as _t

__all__ = [
    "FrozenList",
    "FrozenMutationError",
    "FrozenView",
    "freeze",
    "thaw",
]


class FrozenMutationError(TypeError):
    """Raised on any attempt to mutate a frozen view.

    A ``TypeError`` subclass so generic "is this mutable?" probes keep
    working, with a message that points at :func:`thaw`.
    """


def _blocked(name: str):
    def method(self, *args, **kwargs):
        raise FrozenMutationError(
            f"{type(self).__name__} is an immutable snapshot view; "
            f"{name}() would corrupt shared history — call thaw() for a mutable copy"
        )

    method.__name__ = name
    return method


class FrozenView(dict):
    """Read-only mapping over a resource's described form.

    Construction goes through ``dict.__init__`` (which bypasses the
    blocked ``__setitem__``), after which the view is sealed.  Hashable —
    by its item set — so views can be interned and used as cache keys.
    """

    __slots__ = ("_cached_hash",)

    __setitem__ = _blocked("__setitem__")
    __delitem__ = _blocked("__delitem__")
    __ior__ = _blocked("__ior__")
    clear = _blocked("clear")
    pop = _blocked("pop")
    popitem = _blocked("popitem")
    setdefault = _blocked("setdefault")
    update = _blocked("update")

    def __hash__(self) -> int:  # type: ignore[override]
        try:
            return self._cached_hash
        except AttributeError:
            value = hash(frozenset(dict.items(self)))
            object.__setattr__(self, "_cached_hash", value)
            return value

    def thaw(self) -> dict:
        """A deep, mutable copy — the explicit opt-out from sharing."""
        return thaw(self)

    def __reduce__(self):
        # Default dict-subclass pickling replays items through the
        # (blocked) __setitem__; rebuild through the constructor instead.
        return (type(self), (dict(self),))

    def __repr__(self) -> str:
        return f"FrozenView({dict.__repr__(self)})"


class FrozenList(list):
    """Read-only sequence that still compares equal to plain lists."""

    __slots__ = ("_cached_hash",)

    __setitem__ = _blocked("__setitem__")
    __delitem__ = _blocked("__delitem__")
    __iadd__ = _blocked("__iadd__")
    __imul__ = _blocked("__imul__")
    append = _blocked("append")
    extend = _blocked("extend")
    insert = _blocked("insert")
    remove = _blocked("remove")
    clear = _blocked("clear")
    sort = _blocked("sort")
    reverse = _blocked("reverse")

    # list.pop mutates; block it (dict.pop blocked above for symmetry).
    pop = _blocked("pop")

    def __hash__(self) -> int:  # type: ignore[override]
        try:
            return self._cached_hash
        except AttributeError:
            value = hash(tuple(self))
            object.__setattr__(self, "_cached_hash", value)
            return value

    def thaw(self) -> list:
        return thaw(self)

    def __reduce__(self):
        return (type(self), (list(self),))

    def __repr__(self) -> str:
        return f"FrozenList({list.__repr__(self)})"


def _intern(value, intern: dict | None, count: _t.Callable[[str], None] | None):
    if intern is None:
        if count is not None:
            count("cloud.snapshot.copied")
        return value
    try:
        existing = intern.get(value)
    except TypeError:
        # Unhashable leaf slipped in; keep the fresh copy, uninterned.
        if count is not None:
            count("cloud.snapshot.copied")
        return value
    if existing is not None:
        if count is not None:
            count("cloud.snapshot.shared")
        return existing
    intern[value] = value
    if count is not None:
        count("cloud.snapshot.copied")
    return value


def freeze(
    value: _t.Any,
    intern: dict | None = None,
    count: _t.Callable[[str], None] | None = None,
) -> _t.Any:
    """Recursively convert ``value`` into its frozen, shareable form.

    ``intern`` (a plain dict used as an identity pool) makes equal
    sub-structures one shared object; ``count`` receives
    ``cloud.snapshot.shared`` / ``cloud.snapshot.copied`` per structure so
    the sharing ratio is observable.  Scalars pass through untouched;
    already-frozen values are returned as-is (freeze is idempotent).
    """
    if isinstance(value, (FrozenView, FrozenList)):
        return value
    if isinstance(value, dict):
        frozen = FrozenView(
            (key, freeze(item, intern, count)) for key, item in value.items()
        )
        return _intern(frozen, intern, count)
    if isinstance(value, (list, tuple)):
        frozen = FrozenList(freeze(item, intern, count) for item in value)
        return _intern(frozen, intern, count)
    if isinstance(value, (set, frozenset)):
        return frozenset(freeze(item, intern, count) for item in value)
    return value


def thaw(value: _t.Any) -> _t.Any:
    """Deep, mutable copy of a (possibly frozen) structure.

    The inverse of :func:`freeze`: frozen views become plain dicts, frozen
    lists plain lists, recursively.  Safe on plain structures too.
    """
    if isinstance(value, dict):
        return {key: thaw(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [thaw(item) for item in value]
    return value
