"""Cloud substrate: an in-process simulator of the AWS slice the paper uses.

The paper's POD-Diagnosis interacts with AWS exclusively through API calls
(EC2 instances, AMIs, security groups, key pairs, launch configurations,
auto-scaling groups, elastic load balancers) plus two observability
services (CloudTrail, an Edda-style monitor).  This package implements all
of those with the same observable behaviours the paper depends on:

- resource lifecycle (pending → running → terminated instances, ASG
  reconciliation control loop, ELB registration and health),
- AWS-style error codes (``InvalidAMIID.NotFound``,
  ``InstanceLimitExceeded``, ``Throttling``, ...),
- **eventual consistency**: reads may return stale views for a while after
  a write (§IV of the paper motivates the "consistent AWS API layer"),
- **CloudTrail delivery delay**: API-call logs only become visible minutes
  after the call (§VII explains why the paper could not use it online),
- fault-injection hooks used by the evaluation campaign.
"""

from repro.cloud.api import ApiCallRecord, CloudAPI, TimedCloudClient
from repro.cloud.chaos import (
    CHAOS_LEVELS,
    CHAOS_PROFILES,
    BlackholedCall,
    ChaosController,
    ChaosProfile,
    ErrorStorm,
    ServiceChaos,
    get_profile,
)
from repro.cloud.cloudtrail import CloudTrail
from repro.cloud.controller import AsgController, ScalingActivity
from repro.cloud.provider import SimulatedCloud
from repro.cloud.consistency import ConsistencyModel, EventuallyConsistentView
from repro.cloud.errors import (
    CloudError,
    DependencyViolation,
    LimitExceeded,
    MalformedRequest,
    ResourceInUse,
    ResourceNotFound,
    ServiceUnavailable,
    Throttling,
)
from repro.cloud.faults import FaultInjector
from repro.cloud.freeze import FrozenList, FrozenMutationError, FrozenView, freeze, thaw
from repro.cloud.limits import AccountLimits
from repro.cloud.monitor import CloudMonitor, RegionSnapshot
from repro.cloud.resources import (
    AmiImage,
    AutoScalingGroup,
    Instance,
    InstanceState,
    KeyPair,
    LaunchConfiguration,
    LoadBalancer,
    SecurityGroup,
)
from repro.cloud.state import CloudState

__all__ = [
    "AccountLimits",
    "BlackholedCall",
    "CHAOS_LEVELS",
    "CHAOS_PROFILES",
    "ChaosController",
    "ChaosProfile",
    "ErrorStorm",
    "ServiceChaos",
    "get_profile",
    "AsgController",
    "ScalingActivity",
    "SimulatedCloud",
    "AmiImage",
    "ApiCallRecord",
    "AutoScalingGroup",
    "CloudAPI",
    "CloudError",
    "CloudMonitor",
    "CloudState",
    "CloudTrail",
    "ConsistencyModel",
    "DependencyViolation",
    "EventuallyConsistentView",
    "FaultInjector",
    "FrozenList",
    "FrozenMutationError",
    "FrozenView",
    "freeze",
    "thaw",
    "Instance",
    "RegionSnapshot",
    "InstanceState",
    "KeyPair",
    "LaunchConfiguration",
    "LimitExceeded",
    "LoadBalancer",
    "MalformedRequest",
    "ResourceInUse",
    "ResourceNotFound",
    "SecurityGroup",
    "ServiceUnavailable",
    "Throttling",
    "TimedCloudClient",
]
