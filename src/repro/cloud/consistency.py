"""Eventual consistency: serving stale reads.

AWS describe-calls are served by replicas that lag writes; the paper cites
Martin's "Dealing with Eventual Consistency in the AWS EC2 API" and builds
a retry layer because "the supposed status of a specific cloud resource
[may be] different from our expectation".  We model a per-read replication
lag drawn from an exponential distribution: a read at time *t* observes
the authoritative state as of *t - lag*.  Immediately after a write the
old value is likely visible; the probability decays as time passes —
matching the qualitative behaviour that makes naive assertions flap.
"""

from __future__ import annotations

import random


class ConsistencyModel:
    """Samples replication lag for reads.

    ``mean_lag`` of 0 gives strong consistency (useful in unit tests);
    the defaults approximate EC2's typical sub-ten-second convergence.
    """

    def __init__(self, mean_lag: float = 2.5, max_lag: float = 20.0, seed: int = 0) -> None:
        if mean_lag < 0 or max_lag < 0:
            raise ValueError("lags must be non-negative")
        self.mean_lag = mean_lag
        self.max_lag = max_lag
        self._rng = random.Random(seed)

    def sample_lag(self) -> float:
        if self.mean_lag == 0:
            return 0.0
        return min(self._rng.expovariate(1.0 / self.mean_lag), self.max_lag)


class EventuallyConsistentView:
    """Read-side facade over :class:`~repro.cloud.state.CloudState`.

    Every read samples an independent lag, so two back-to-back reads can
    disagree — the exact anomaly the paper's consistent-API wrapper retries
    through.
    """

    def __init__(self, state, clock, model: ConsistencyModel | None = None) -> None:
        self.state = state
        self.clock = clock
        self.model = model or ConsistencyModel()

    def read(self, kind: str, identifier: str) -> dict | None:
        """Possibly-stale describe of one resource (None = not visible).

        Returns the frozen history view directly — no copy.  Counts the
        read as ``cloud.reads.stale`` when the sampled lag pushed the
        effective read time behind the resource's last write (even if the
        served value happens to equal the latest — staleness is about
        *which* write answered), and ``cloud.reads.fresh`` otherwise.
        """
        as_of = max(0.0, self.clock.now() - self.model.sample_lag())
        view = self.state.view_at(kind, identifier, as_of)
        last_write = self.state.last_write_at(kind, identifier)
        if last_write is not None and last_write > as_of:
            self.state._count("cloud.reads.stale")
        else:
            self.state._count("cloud.reads.fresh")
        return view

    def read_consistent(self, kind: str, identifier: str) -> dict | None:
        """Strongly consistent describe — what a retry loop converges to."""
        self.state._count("cloud.reads.fresh")
        return self.state.view_at(kind, identifier, self.clock.now())
