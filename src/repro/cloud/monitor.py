"""Edda-style cloud monitor.

Netflix's Edda polls AWS and keeps timestamped snapshots of every
resource, letting operators ask "what did this look like N minutes ago?".
The paper's assertion evaluation consults such a monitor alongside direct
API calls.  Our monitor is a periodic crawler process over the simulated
region: it records full-region snapshots that diagnosis tests can query
both for *current* state and for *history* (e.g. to notice a launch
configuration changed and changed back — the transient-fault class).
"""

from __future__ import annotations

import copy
import dataclasses
import typing as _t

from repro.cloud.state import KINDS


@dataclasses.dataclass
class RegionSnapshot:
    """One crawl: time plus the described form of every resource."""

    taken_at: float
    resources: dict[str, dict[str, dict]]  # kind -> id -> describe()

    def get(self, kind: str, identifier: str) -> dict | None:
        return self.resources.get(kind, {}).get(identifier)


class CloudMonitor:
    """Periodic snapshotting crawler (Edda substitute)."""

    def __init__(self, engine, state, interval: float = 30.0, retention: int = 512) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.engine = engine
        self.state = state
        self.interval = interval
        self.retention = retention
        self.snapshots: list[RegionSnapshot] = []
        self._running = False

    def start(self) -> None:
        """Begin crawling; takes an immediate snapshot then polls."""
        if self._running:
            return
        self._running = True
        self.engine.process(self._crawl_loop(), name="cloud-monitor")

    def stop(self) -> None:
        self._running = False

    def _crawl_loop(self) -> _t.Generator:
        while self._running:
            self.take_snapshot()
            yield self.engine.timeout(self.interval)

    def take_snapshot(self) -> RegionSnapshot:
        """Crawl the region now (also callable directly in tests)."""
        resources: dict[str, dict[str, dict]] = {}
        for kind in KINDS:
            registry = self.state._registry(kind)
            resources[kind] = {
                identifier: copy.deepcopy(resource.describe())
                for identifier, resource in registry.items()
            }
        snapshot = RegionSnapshot(taken_at=self.engine.now, resources=resources)
        self.snapshots.append(snapshot)
        if len(self.snapshots) > self.retention:
            del self.snapshots[: len(self.snapshots) - self.retention]
        return snapshot

    # -- queries -----------------------------------------------------------

    def current(self, kind: str, identifier: str) -> dict | None:
        """Most recent crawled view of a resource."""
        if not self.snapshots:
            return None
        return self.snapshots[-1].get(kind, identifier)

    def at(self, when: float, kind: str, identifier: str) -> dict | None:
        """View of a resource from the last snapshot at or before ``when``."""
        best: RegionSnapshot | None = None
        for snapshot in self.snapshots:
            if snapshot.taken_at <= when:
                best = snapshot
            else:
                break
        return best.get(kind, identifier) if best else None

    def changes(self, kind: str, identifier: str) -> list[tuple[float, dict | None]]:
        """Distinct successive views of a resource across all snapshots.

        Diagnosis uses this to detect flapping configuration — a value that
        changed and later reverted (the paper's transient-fault class).
        """
        result: list[tuple[float, dict | None]] = []
        previous: dict | None = None
        seen_any = False
        for snapshot in self.snapshots:
            view = snapshot.get(kind, identifier)
            if not seen_any or view != previous:
                result.append((snapshot.taken_at, view))
                previous = view
                seen_any = True
        return result
