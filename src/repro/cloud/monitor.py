"""Edda-style cloud monitor.

Netflix's Edda polls AWS and keeps timestamped snapshots of every
resource, letting operators ask "what did this look like N minutes ago?".
The paper's assertion evaluation consults such a monitor alongside direct
API calls.  Our monitor is a periodic crawler process over the simulated
region: it records full-region snapshots that diagnosis tests can query
both for *current* state and for *history* (e.g. to notice a launch
configuration changed and changed back — the transient-fault class).

Snapshots are **delta-encoded**: the seed deep-copied every resource's
``describe()`` on every tick (O(region) per poll), while this monitor
consumes :class:`~repro.cloud.state.CloudState`'s write log and stores
only what changed since the previous tick — unchanged resources share
the previous tick's frozen view by reference.  Per-tick work is
proportional to writes, not region size; every ``REBASE_INTERVAL`` ticks
a snapshot materializes its full resource map so chain walks stay O(1)
amortized and retention trimming actually frees the trimmed deltas.
"""

from __future__ import annotations

import typing as _t
from bisect import bisect_right

from repro.cloud.freeze import FrozenView
from repro.cloud.state import KINDS

#: Materialize a full resource map every this many delta snapshots: keeps
#: lookup chains short and bounds how much trimmed history a retained
#: snapshot's delta chain can pin.
REBASE_INTERVAL = 32


class RegionSnapshot:
    """One crawl: time plus the described form of every resource.

    Either *full* (``_resources`` holds the complete kind -> id -> view
    map) or a *delta* over ``_base``: ``_delta`` holds only the resources
    written since the base was taken (``None`` = deleted).  ``get`` walks
    the delta chain; ``resources`` materializes on demand (and cuts the
    chain, so repeated queries are O(1)).
    """

    __slots__ = ("taken_at", "_resources", "_base", "_delta", "depth")

    def __init__(
        self,
        taken_at: float,
        resources: dict[str, dict[str, FrozenView]] | None = None,
        base: "RegionSnapshot | None" = None,
        delta: dict[str, dict[str, FrozenView | None]] | None = None,
    ) -> None:
        if (resources is None) == (base is None):
            raise ValueError("exactly one of resources/base required")
        self.taken_at = taken_at
        self._resources = resources
        self._base = base
        self._delta = delta or {}
        self.depth = 0 if base is None else base.depth + 1

    def get(self, kind: str, identifier: str) -> FrozenView | None:
        snapshot: RegionSnapshot | None = self
        while snapshot is not None:
            if snapshot._resources is not None:
                return snapshot._resources.get(kind, {}).get(identifier)
            by_kind = snapshot._delta.get(kind)
            if by_kind is not None and identifier in by_kind:
                return by_kind[identifier]  # None = tombstone
            snapshot = snapshot._base
        return None

    @property
    def resources(self) -> dict[str, dict[str, FrozenView]]:
        """The complete kind -> id -> view map (materialized lazily)."""
        if self._resources is None:
            self._materialize()
        return self._resources  # type: ignore[return-value]

    def _materialize(self) -> None:
        base = self._base
        assert base is not None
        merged = {kind: dict(views) for kind, views in base.resources.items()}
        for kind, by_kind in self._delta.items():
            target = merged.setdefault(kind, {})
            for identifier, view in by_kind.items():
                if view is None:
                    target.pop(identifier, None)
                else:
                    target[identifier] = view
        self._resources = merged
        # Cut the chain: lookups no longer walk, and the base (possibly
        # already trimmed from the monitor's list) can be collected.
        self._base = None
        self._delta = {}
        self.depth = 0


class CloudMonitor:
    """Periodic snapshotting crawler (Edda substitute)."""

    def __init__(self, engine, state, interval: float = 30.0, retention: int = 512) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.engine = engine
        self.state = state
        self.interval = interval
        self.retention = retention
        self.snapshots: list[RegionSnapshot] = []
        self._times: list[float] = []  # parallel taken_at array for bisect
        self._log_position = 0
        self._running = False

    def start(self) -> None:
        """Begin crawling; takes an immediate snapshot then polls."""
        if self._running:
            return
        self._running = True
        self.engine.process(self._crawl_loop(), name="cloud-monitor")

    def stop(self) -> None:
        self._running = False

    def _crawl_loop(self) -> _t.Generator:
        while self._running:
            self.take_snapshot()
            yield self.engine.timeout(self.interval)

    def take_snapshot(self) -> RegionSnapshot:
        """Crawl the region now (also callable directly in tests).

        The first crawl records the full region; later crawls record only
        the resources the write log says changed since the previous one.
        ``cloud.monitor.refreshed`` / ``cloud.monitor.reused`` count how
        many per-resource views each tick re-captured vs shared.
        """
        state = self.state
        changed = state.writes_since(self._log_position)
        self._log_position = state.write_seq()
        if not self.snapshots:
            resources = {
                kind: {
                    identifier: state.latest_view(kind, identifier)
                    for identifier in state._registry(kind)
                }
                for kind in KINDS
            }
            snapshot = RegionSnapshot(taken_at=self.engine.now, resources=resources)
            refreshed = sum(len(views) for views in resources.values())
        else:
            delta: dict[str, dict[str, FrozenView | None]] = {}
            for kind, identifier in changed:
                delta.setdefault(kind, {})[identifier] = state.latest_view(kind, identifier)
            snapshot = RegionSnapshot(
                taken_at=self.engine.now, base=self.snapshots[-1], delta=delta
            )
            if snapshot.depth >= REBASE_INTERVAL:
                snapshot._materialize()
            refreshed = sum(len(by_kind) for by_kind in delta.values())
        region_size = sum(len(state._registry(kind)) for kind in KINDS)
        state._count_many("cloud.monitor.refreshed", refreshed)
        state._count_many("cloud.monitor.reused", max(0, region_size - refreshed))
        self.snapshots.append(snapshot)
        self._times.append(snapshot.taken_at)
        if len(self.snapshots) > self.retention:
            trim = len(self.snapshots) - self.retention
            # The new head may chain into trimmed snapshots; materialize
            # it so the trimmed deltas are actually released.
            self.snapshots[trim].resources
            del self.snapshots[:trim]
            del self._times[:trim]
        return snapshot

    # -- queries -----------------------------------------------------------

    def current(self, kind: str, identifier: str) -> FrozenView | None:
        """Most recent crawled view of a resource."""
        if not self.snapshots:
            return None
        return self.snapshots[-1].get(kind, identifier)

    def at(self, when: float, kind: str, identifier: str) -> FrozenView | None:
        """View of a resource from the last snapshot at or before ``when``."""
        index = bisect_right(self._times, when) - 1
        return self.snapshots[index].get(kind, identifier) if index >= 0 else None

    def view_at(self, when: float, kind: str, identifier: str) -> FrozenView | None:
        """Alias of :meth:`at` matching the state-layer naming."""
        return self.at(when, kind, identifier)

    def changes(self, kind: str, identifier: str) -> list[tuple[float, FrozenView | None]]:
        """Distinct successive views of a resource across all snapshots.

        Diagnosis uses this to detect flapping configuration — a value that
        changed and later reverted (the paper's transient-fault class).
        """
        result: list[tuple[float, FrozenView | None]] = []
        previous: FrozenView | None = None
        seen_any = False
        for snapshot in self.snapshots:
            view = snapshot.get(kind, identifier)
            # Shared references make the common no-change case an identity
            # check; `!=` only runs when the objects differ.
            if not seen_any or (view is not previous and view != previous):
                result.append((snapshot.taken_at, view))
                previous = view
                seen_any = True
        return result

    def resource_timeline(self, kind: str, identifier: str) -> list[tuple[float, FrozenView | None]]:
        """Alias of :meth:`changes`: the deduplicated (time, view) history."""
        return self.changes(kind, identifier)
