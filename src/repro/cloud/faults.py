"""Fault-injection hooks on the simulated cloud.

These are the *mechanisms*; the evaluation campaign (`repro.evaluation`)
decides which fault to inject into which run, when, and whether the fault
is transient (reverted shortly after injection — the paper's third
wrong-diagnosis class).

Each injector mutates cloud state exactly the way the corresponding real
event would: a concurrent team swapping the launch configuration's AMI, a
key pair deleted by an operator, an ELB service disruption, etc.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cloud.state import CloudState


@dataclasses.dataclass
class InjectionRecord:
    """Bookkeeping for one injected fault (ground truth for metrics)."""

    time: float
    fault_type: str
    target: str
    details: dict
    reverted_at: float | None = None


class FaultInjector:
    """Mutates cloud state to realise the paper's 8 fault types."""

    def __init__(self, engine, state: CloudState, trail=None) -> None:
        self.engine = engine
        self.state = state
        #: Chaos actions are themselves API calls from *someone*; with a
        #: CloudTrail attached, random terminations leave delayed audit
        #: records — which is what lets offline analysis attribute them.
        self.trail = trail
        self.injections: list[InjectionRecord] = []

    def _log(self, fault_type: str, target: str, **details) -> InjectionRecord:
        record = InjectionRecord(
            time=self.engine.now, fault_type=fault_type, target=target, details=details
        )
        self.injections.append(record)
        return record

    # -- configuration faults (1-4): logs stay normal ---------------------

    def change_lc_ami(self, lc_name: str, rogue_image_id: str) -> InjectionRecord:
        """Fault 1 — AMI changed during upgrade (mixed-version hazard)."""
        lc = self.state.get("launch_configuration", lc_name)
        original = lc.image_id
        lc.image_id = rogue_image_id
        self.state.record_write("launch_configuration", lc_name, self.engine.now)
        return self._log("AMI_CHANGED", lc_name, original=original, rogue=rogue_image_id)

    def change_lc_key_pair(self, lc_name: str, rogue_key_name: str) -> InjectionRecord:
        """Fault 2 — key pair management fault (wrong key in the LC)."""
        lc = self.state.get("launch_configuration", lc_name)
        original = lc.key_name
        lc.key_name = rogue_key_name
        self.state.record_write("launch_configuration", lc_name, self.engine.now)
        return self._log("KEYPAIR_WRONG", lc_name, original=original, rogue=rogue_key_name)

    def change_lc_security_group(self, lc_name: str, rogue_group: str) -> InjectionRecord:
        """Fault 3 — security group configuration fault."""
        lc = self.state.get("launch_configuration", lc_name)
        original = list(lc.security_groups)
        lc.security_groups = [rogue_group]
        self.state.record_write("launch_configuration", lc_name, self.engine.now)
        return self._log("SG_WRONG", lc_name, original=original, rogue=rogue_group)

    def change_lc_instance_type(self, lc_name: str, rogue_type: str) -> InjectionRecord:
        """Fault 4 — instance type changed during upgrade."""
        lc = self.state.get("launch_configuration", lc_name)
        original = lc.instance_type
        lc.instance_type = rogue_type
        self.state.record_write("launch_configuration", lc_name, self.engine.now)
        return self._log("INSTANCE_TYPE_CHANGED", lc_name, original=original, rogue=rogue_type)

    # -- resource faults (5-8): launches / registrations fail --------------

    def make_ami_unavailable(self, image_id: str) -> InjectionRecord:
        """Fault 5 — AMI deregistered mid-upgrade."""
        if self.state.exists("ami", image_id):
            image = self.state.get("ami", image_id)
            image.available = False
            self.state.delete("ami", image_id, self.engine.now)
        return self._log("AMI_UNAVAILABLE", image_id)

    def make_key_pair_unavailable(self, key_name: str) -> InjectionRecord:
        """Fault 6 — key pair deleted mid-upgrade."""
        if self.state.exists("key_pair", key_name):
            self.state.delete("key_pair", key_name, self.engine.now)
        return self._log("KEYPAIR_UNAVAILABLE", key_name)

    def make_security_group_unavailable(self, group_name: str) -> InjectionRecord:
        """Fault 7 — security group deleted mid-upgrade."""
        if self.state.exists("security_group", group_name):
            self.state.delete("security_group", group_name, self.engine.now)
        return self._log("SG_UNAVAILABLE", group_name)

    def make_elb_unavailable(self, elb_name: str) -> InjectionRecord:
        """Fault 8 — ELB service disruption (cf. the Dec-2012 ELB outage)."""
        if self.state.exists("load_balancer", elb_name):
            elb = self.state.get("load_balancer", elb_name)
            elb.available = False
            self.state.record_write("load_balancer", elb_name, self.engine.now)
        return self._log("ELB_UNAVAILABLE", elb_name)

    # -- reverts (transient faults) -----------------------------------------

    def revert(self, record: InjectionRecord) -> None:
        """Undo an injection — models the transient-fault class where the
        root cause has vanished by the time diagnosis tests run."""
        now = self.engine.now
        handlers: dict[str, _t.Callable[[InjectionRecord], None]] = {
            "AMI_CHANGED": self._revert_lc_field("image_id"),
            "KEYPAIR_WRONG": self._revert_lc_field("key_name"),
            "SG_WRONG": self._revert_lc_field("security_groups"),
            "INSTANCE_TYPE_CHANGED": self._revert_lc_field("instance_type"),
            "ELB_UNAVAILABLE": self._revive_elb,
        }
        handler = handlers.get(record.fault_type)
        if handler is None:
            raise ValueError(f"fault type {record.fault_type} is not revertible")
        handler(record)
        record.reverted_at = now

    def _revert_lc_field(self, field: str) -> _t.Callable[[InjectionRecord], None]:
        def undo(record: InjectionRecord) -> None:
            if not self.state.exists("launch_configuration", record.target):
                return
            lc = self.state.get("launch_configuration", record.target)
            setattr(lc, field, record.details["original"])
            self.state.record_write("launch_configuration", record.target, self.engine.now)

        return undo

    def _revive_elb(self, record: InjectionRecord) -> None:
        if self.state.exists("load_balancer", record.target):
            elb = self.state.get("load_balancer", record.target)
            elb.available = True
            self.state.record_write("load_balancer", record.target, self.engine.now)

    # -- interference (not counted as injected faults) -----------------------

    def terminate_random_instance(self, asg_name: str, rng) -> str | None:
        """Randomly kill a running instance — the paper's 'uncertainty of
        cloud infrastructure' confounder."""
        candidates = self.state.running_instances(asg_name)
        if not candidates:
            return None
        victim = rng.choice(candidates)
        victim.state = self.state.get("instance", victim.instance_id).state
        instance = self.state.get("instance", victim.instance_id)
        from repro.cloud.resources import InstanceState

        instance.state = InstanceState.TERMINATED
        instance.terminate_time = self.engine.now
        self.state.record_write("instance", victim.instance_id, self.engine.now)
        for elb in self.state.load_balancers.values():
            if victim.instance_id in elb.registered_instances:
                elb.registered_instances.remove(victim.instance_id)
                self.state.record_write("load_balancer", elb.name, self.engine.now)
        if self.trail is not None:
            self.trail.record(
                "TerminateInstances", "chaos-script", {"InstanceId": victim.instance_id}
            )
        self._log("RANDOM_TERMINATION", victim.instance_id, asg=asg_name)
        return victim.instance_id
