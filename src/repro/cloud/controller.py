"""The ASG control loop.

AWS auto-scaling is a convergence engine: it continuously compares an
ASG's desired capacity with its live fleet and launches or terminates
instances to close the gap.  Asgard's rolling upgrade *relies* on this —
it terminates an old instance and waits for the ASG to start a new one
(Fig. 2, "Wait for ASG to start new instance").  The paper's resource
faults (AMI/key/SG/ELB unavailable) manifest precisely here: the launch
attempt fails inside the black-box control loop, producing a *scaling
activity* failure and, from Asgard's point of view, a silent stall.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cloud.errors import CloudError, LimitExceeded, ResourceNotFound, ServiceUnavailable
from repro.cloud.resources import Instance, InstanceState
from repro.cloud.state import CloudState
from repro.sim.latency import LatencyModel, instance_boot_latency


@dataclasses.dataclass
class ScalingActivity:
    """One launch/terminate attempt, mirroring DescribeScalingActivities."""

    time: float
    asg_name: str
    activity: str  # "Launch" | "Terminate"
    status: str  # "Successful" | "Failed" | "InProgress"
    description: str
    error_code: str | None = None
    instance_id: str | None = None


class AsgController:
    """Background reconciliation process for every ASG in the region."""

    #: ASG scaling process names (matching AWS) that can be suspended.
    LAUNCH = "Launch"
    TERMINATE = "Terminate"

    def __init__(
        self,
        engine,
        state: CloudState,
        interval: float = 5.0,
        boot_latency: LatencyModel | None = None,
        elb_register_delay: float = 3.0,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.engine = engine
        self.state = state
        self.interval = interval
        self.boot_latency = boot_latency or instance_boot_latency()
        self.elb_register_delay = elb_register_delay
        self.activities: list[ScalingActivity] = []
        self._listeners: list[_t.Callable[[ScalingActivity], None]] = []
        self._running = False
        self._tick = 0

    def subscribe(self, listener: _t.Callable[[ScalingActivity], None]) -> None:
        self._listeners.append(listener)

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.engine.process(self._loop(), name="asg-controller")

    def stop(self) -> None:
        self._running = False

    def activities_for(self, asg_name: str) -> list[ScalingActivity]:
        return [a for a in self.activities if a.asg_name == asg_name]

    # -- internals ----------------------------------------------------------

    def _loop(self) -> _t.Generator:
        while self._running:
            self.reconcile()
            yield self.engine.timeout(self.interval)

    def reconcile(self) -> None:
        """One pass: converge every ASG towards its desired capacity.

        The visit order rotates between passes: AWS gives no ASG priority
        over shared account capacity, so when the account is at its
        instance limit, a freed slot is won by whichever group's
        reconciliation happens to run first — which is how a second
        team's scale-out starves another team's upgrade (§VI.A).
        """
        names = sorted(self.state.auto_scaling_groups)
        if names:
            rotation = self._tick % len(names)
            names = names[rotation:] + names[:rotation]
        self._tick += 1
        for asg_name in names:
            self._reconcile_asg(asg_name)

    def _reconcile_asg(self, asg_name: str) -> None:
        asg = self.state.auto_scaling_groups.get(asg_name)
        if asg is None:
            return
        self._prune_dead_members(asg_name)
        asg = self.state.auto_scaling_groups.get(asg_name)
        active = [
            iid
            for iid in asg.instance_ids
            if self.state.exists("instance", iid)
            and self.state.get("instance", iid).state.is_active()
        ]
        gap = asg.desired_capacity - len(active)
        if gap > 0 and self.LAUNCH not in asg.suspended_processes:
            for _ in range(gap):
                self._try_launch(asg_name)
        elif gap < 0 and self.TERMINATE not in asg.suspended_processes:
            # Scale in: terminate the oldest instances first (AWS default-ish).
            by_age = sorted(active, key=lambda iid: self.state.get("instance", iid).launch_time)
            for iid in by_age[: abs(gap)]:
                self._terminate_member(asg_name, iid)

    def _prune_dead_members(self, asg_name: str) -> None:
        asg = self.state.auto_scaling_groups[asg_name]
        alive = []
        # Iterate a snapshot: replacing an unhealthy member mutates
        # asg.instance_ids mid-loop.
        for iid in list(asg.instance_ids):
            if not self.state.exists("instance", iid):
                continue
            instance = self.state.get("instance", iid)
            if instance.state in (InstanceState.TERMINATED, InstanceState.SHUTTING_DOWN):
                continue
            if instance.state == InstanceState.RUNNING and not instance.healthy:
                # The ASG replaces unhealthy instances (§V.B of the paper).
                self._terminate_member(asg_name, iid, cause="unhealthy")
                continue
            alive.append(iid)
        if alive != asg.instance_ids:
            asg.instance_ids = alive
            self.state.record_write("auto_scaling_group", asg_name, self.engine.now)

    def _record(self, activity: ScalingActivity) -> None:
        self.activities.append(activity)
        self.state.scaling_activities.append(activity)
        for listener in self._listeners:
            listener(activity)

    def _try_launch(self, asg_name: str) -> None:
        asg = self.state.auto_scaling_groups[asg_name]
        try:
            self._validate_launch(asg)
        except CloudError as exc:
            self._record(
                ScalingActivity(
                    time=self.engine.now,
                    asg_name=asg_name,
                    activity=self.LAUNCH,
                    status="Failed",
                    description=f"Launching a new EC2 instance failed: {exc}",
                    error_code=exc.code,
                )
            )
            return
        lc = self.state.get("launch_configuration", asg.launch_configuration_name)
        instance_id = self.state.new_id("instance")
        instance = Instance(
            instance_id=instance_id,
            image_id=lc.image_id,
            instance_type=lc.instance_type,
            key_name=lc.key_name,
            security_groups=list(lc.security_groups),
            state=InstanceState.PENDING,
            launch_time=self.engine.now,
            asg_name=asg_name,
        )
        self.state.put("instance", instance_id, instance, self.engine.now)
        asg.instance_ids.append(instance_id)
        self.state.record_write("auto_scaling_group", asg_name, self.engine.now)
        self._record(
            ScalingActivity(
                time=self.engine.now,
                asg_name=asg_name,
                activity=self.LAUNCH,
                status="InProgress",
                description=f"Launching a new EC2 instance: {instance_id}",
                instance_id=instance_id,
            )
        )
        self.engine.process(self._boot(asg_name, instance_id), name=f"boot-{instance_id}")

    def _validate_launch(self, asg) -> None:
        """Raise the CloudError a real launch attempt would surface."""
        if not self.state.exists("launch_configuration", asg.launch_configuration_name):
            raise ResourceNotFound.of("launch_configuration", asg.launch_configuration_name)
        lc = self.state.get("launch_configuration", asg.launch_configuration_name)
        if not self.state.exists("ami", lc.image_id):
            raise ResourceNotFound.of("ami", lc.image_id)
        if not self.state.get("ami", lc.image_id).available:
            raise ResourceNotFound.of("ami", lc.image_id)
        if not self.state.exists("key_pair", lc.key_name):
            raise ResourceNotFound.of("key_pair", lc.key_name)
        for group in lc.security_groups:
            if not self.state.exists("security_group", group):
                raise ResourceNotFound.of("security_group", group)
        if self.state.active_instance_count() >= self.state.limits.max_instances:
            raise LimitExceeded(
                f"account limit of {self.state.limits.max_instances} instances reached"
            )

    def _boot(self, asg_name: str, instance_id: str) -> _t.Generator:
        yield self.engine.timeout(self.boot_latency.sample())
        if not self.state.exists("instance", instance_id):
            return
        instance = self.state.get("instance", instance_id)
        if instance.state != InstanceState.PENDING:
            return
        instance.state = InstanceState.RUNNING
        self.state.record_write("instance", instance_id, self.engine.now)
        self._record(
            ScalingActivity(
                time=self.engine.now,
                asg_name=asg_name,
                activity=self.LAUNCH,
                status="Successful",
                description=f"Launched EC2 instance: {instance_id}",
                instance_id=instance_id,
            )
        )
        yield self.engine.timeout(self.elb_register_delay)
        self._register_with_elbs(asg_name, instance_id)

    def _register_with_elbs(self, asg_name: str, instance_id: str) -> None:
        asg = self.state.auto_scaling_groups.get(asg_name)
        if asg is None or not self.state.exists("instance", instance_id):
            return
        for elb_name in asg.load_balancer_names:
            if not self.state.exists("load_balancer", elb_name):
                self._record(
                    ScalingActivity(
                        time=self.engine.now,
                        asg_name=asg_name,
                        activity=self.LAUNCH,
                        status="Failed",
                        description=(
                            f"Registering {instance_id} with load balancer {elb_name} failed:"
                            " load balancer not found"
                        ),
                        error_code=ServiceUnavailable.code,
                        instance_id=instance_id,
                    )
                )
                continue
            elb = self.state.get("load_balancer", elb_name)
            if not elb.available:
                self._record(
                    ScalingActivity(
                        time=self.engine.now,
                        asg_name=asg_name,
                        activity=self.LAUNCH,
                        status="Failed",
                        description=(
                            f"Registering {instance_id} with load balancer {elb_name} failed:"
                            " load balancer unavailable"
                        ),
                        error_code=ServiceUnavailable.code,
                        instance_id=instance_id,
                    )
                )
                continue
            if instance_id not in elb.registered_instances:
                elb.registered_instances.append(instance_id)
                self.state.record_write("load_balancer", elb_name, self.engine.now)

    def _terminate_member(self, asg_name: str, instance_id: str, cause: str = "scale-in") -> None:
        asg = self.state.auto_scaling_groups[asg_name]
        if instance_id in asg.instance_ids:
            asg.instance_ids.remove(instance_id)
            self.state.record_write("auto_scaling_group", asg_name, self.engine.now)
        instance = self.state.get("instance", instance_id)
        instance.state = InstanceState.SHUTTING_DOWN
        instance.terminate_time = self.engine.now
        self.state.record_write("instance", instance_id, self.engine.now)
        self._record(
            ScalingActivity(
                time=self.engine.now,
                asg_name=asg_name,
                activity=self.TERMINATE,
                status="Successful",
                description=f"Terminating EC2 instance ({cause}): {instance_id}",
                instance_id=instance_id,
            )
        )
        self.engine.process(self._finish_termination(instance_id), name=f"asg-term-{instance_id}")

    def _finish_termination(self, instance_id: str) -> _t.Generator:
        yield self.engine.timeout(4.0)
        if not self.state.exists("instance", instance_id):
            return
        instance = self.state.get("instance", instance_id)
        instance.state = InstanceState.TERMINATED
        self.state.record_write("instance", instance_id, self.engine.now)
        for elb in self.state.load_balancers.values():
            if instance_id in elb.registered_instances:
                elb.registered_instances.remove(instance_id)
                self.state.record_write("load_balancer", elb.name, self.engine.now)
