"""Resource model for the simulated cloud.

Only the attributes POD-Diagnosis observes are modelled — the assertion
library checks AMI ids, security groups, key pairs, instance types,
ELB registration and instance counts, so those are first-class; everything
else AWS carries is irrelevant to the reproduction and omitted.
"""

from __future__ import annotations

import dataclasses
import enum
import typing as _t


class InstanceState(str, enum.Enum):
    """EC2 instance lifecycle states the simulator distinguishes."""

    PENDING = "pending"
    RUNNING = "running"
    SHUTTING_DOWN = "shutting-down"
    TERMINATED = "terminated"

    def is_active(self) -> bool:
        """Pending or running — counts against the account instance limit."""
        return self in (InstanceState.PENDING, InstanceState.RUNNING)


@dataclasses.dataclass(slots=True)
class AmiImage:
    """A machine image; the unit of 'version' in a rolling upgrade."""

    image_id: str
    name: str
    version: str
    available: bool = True

    def describe(self) -> dict:
        return {
            "ImageId": self.image_id,
            "Name": self.name,
            "Version": self.version,
            "State": "available" if self.available else "deregistered",
        }


@dataclasses.dataclass(slots=True)
class SecurityGroup:
    """A named firewall ruleset; assertions verify the ASG references the
    right one (fault type 3) and that it still exists (fault type 7)."""

    group_id: str
    group_name: str
    description: str = ""
    ingress_rules: list[dict] = dataclasses.field(default_factory=list)

    def describe(self) -> dict:
        return {
            "GroupId": self.group_id,
            "GroupName": self.group_name,
            "Description": self.description,
            "IpPermissions": [dict(rule) for rule in self.ingress_rules],
        }


@dataclasses.dataclass(slots=True)
class KeyPair:
    """An SSH key pair (fault types 2 and 6)."""

    key_name: str
    fingerprint: str

    def describe(self) -> dict:
        return {"KeyName": self.key_name, "KeyFingerprint": self.fingerprint}


@dataclasses.dataclass(slots=True)
class LaunchConfiguration:
    """Template from which the ASG launches instances.

    The rolling upgrade's first real step is *Update launch configuration*:
    create LC' pointing at the new AMI and attach it to the ASG.  Most of
    the paper's configuration faults are LC corruptions.
    """

    name: str
    image_id: str
    instance_type: str
    key_name: str
    security_groups: list[str]
    created_at: float = 0.0

    def describe(self) -> dict:
        return {
            "LaunchConfigurationName": self.name,
            "ImageId": self.image_id,
            "InstanceType": self.instance_type,
            "KeyName": self.key_name,
            "SecurityGroups": list(self.security_groups),
            "CreatedTime": self.created_at,
        }


@dataclasses.dataclass(slots=True)
class Instance:
    """A virtual machine instance."""

    instance_id: str
    image_id: str
    instance_type: str
    key_name: str
    security_groups: list[str]
    state: InstanceState = InstanceState.PENDING
    launch_time: float = 0.0
    terminate_time: float | None = None
    asg_name: str | None = None
    #: Health as the ELB sees it once registered.
    healthy: bool = True

    def describe(self) -> dict:
        return {
            "InstanceId": self.instance_id,
            "ImageId": self.image_id,
            "InstanceType": self.instance_type,
            "KeyName": self.key_name,
            "SecurityGroups": list(self.security_groups),
            "State": {"Name": self.state.value},
            "LaunchTime": self.launch_time,
            "AutoScalingGroupName": self.asg_name,
        }


@dataclasses.dataclass(slots=True)
class LoadBalancer:
    """An ELB: the cluster's point of contact for incoming traffic."""

    name: str
    registered_instances: list[str] = dataclasses.field(default_factory=list)
    available: bool = True

    def describe(self) -> dict:
        return {
            "LoadBalancerName": self.name,
            "Instances": [{"InstanceId": i} for i in self.registered_instances],
            "State": "active" if self.available else "unavailable",
        }


@dataclasses.dataclass(slots=True)
class AutoScalingGroup:
    """The ASG that owns the application's instance fleet.

    Asgard performs rolling upgrade by updating the ASG's launch
    configuration, then terminating old instances and letting the ASG's
    control loop launch replacements from the new LC.
    """

    name: str
    launch_configuration_name: str
    min_size: int
    max_size: int
    desired_capacity: int
    instance_ids: list[str] = dataclasses.field(default_factory=list)
    load_balancer_names: list[str] = dataclasses.field(default_factory=list)
    #: Suspended scaling processes (Asgard suspends some during upgrades).
    suspended_processes: set[str] = dataclasses.field(default_factory=set)

    def describe(self) -> dict:
        return {
            "AutoScalingGroupName": self.name,
            "LaunchConfigurationName": self.launch_configuration_name,
            "MinSize": self.min_size,
            "MaxSize": self.max_size,
            "DesiredCapacity": self.desired_capacity,
            "Instances": [{"InstanceId": i} for i in self.instance_ids],
            "LoadBalancerNames": list(self.load_balancer_names),
            "SuspendedProcesses": sorted(self.suspended_processes),
        }


#: Union of every resource dataclass, for typed registries.
Resource = _t.Union[
    AmiImage,
    SecurityGroup,
    KeyPair,
    LaunchConfiguration,
    Instance,
    LoadBalancer,
    AutoScalingGroup,
]
