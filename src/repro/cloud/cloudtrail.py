"""CloudTrail: the delayed API-call audit log.

The paper evaluated CloudTrail and rejected it for *online* diagnosis
because "the delay (up to 15 minutes) between a call and its CloudTrail
log appearing is not suitable".  We reproduce exactly that: every API call
is recorded immediately, but :meth:`lookup_events` only returns records
older than the delivery delay.  Offline analyses (and the paper's
suggested mitigation for transient faults) can still consult it.
"""

from __future__ import annotations

import dataclasses
import random
import typing as _t


@dataclasses.dataclass
class TrailRecord:
    """One audit record: who called what, when, with which outcome."""

    event_time: float
    event_name: str
    principal: str
    request_parameters: dict
    error_code: str | None = None
    #: When this record becomes visible through lookup_events.
    delivery_time: float = 0.0

    def visible_at(self, now: float) -> bool:
        return now >= self.delivery_time


class CloudTrail:
    """Audit log with per-record delivery delay.

    Delay is sampled uniformly in ``[min_delay, max_delay]`` per record —
    the paper reports "up to 15 minutes", so the default max is 900 s.
    """

    def __init__(
        self,
        clock,
        min_delay: float = 300.0,
        max_delay: float = 900.0,
        seed: int = 0,
    ) -> None:
        if not 0 <= min_delay <= max_delay:
            raise ValueError("invalid delay bounds")
        self.clock = clock
        self.min_delay = min_delay
        self.max_delay = max_delay
        self._rng = random.Random(seed)
        self._records: list[TrailRecord] = []

    def record(
        self,
        event_name: str,
        principal: str,
        request_parameters: dict,
        error_code: str | None = None,
    ) -> TrailRecord:
        now = self.clock.now()
        record = TrailRecord(
            event_time=now,
            event_name=event_name,
            principal=principal,
            request_parameters=dict(request_parameters),
            error_code=error_code,
            delivery_time=now + self._rng.uniform(self.min_delay, self.max_delay),
        )
        self._records.append(record)
        return record

    def lookup_events(
        self,
        start: float = 0.0,
        end: float | None = None,
        event_name: str | None = None,
        principal: str | None = None,
    ) -> list[TrailRecord]:
        """Records in [start, end] that have already been *delivered*.

        This is the online view — recent calls are invisible, which is why
        POD-Diagnosis cannot attribute, e.g., a random instance termination
        to its author in real time (§V.B).
        """
        now = self.clock.now()
        end = now if end is None else end
        result = []
        for record in self._records:
            if not record.visible_at(now):
                continue
            if not start <= record.event_time <= end:
                continue
            if event_name is not None and record.event_name != event_name:
                continue
            if principal is not None and record.principal != principal:
                continue
            result.append(record)
        return result

    def all_records(self) -> list[TrailRecord]:
        """The full audit log regardless of delivery (offline analysis)."""
        return list(self._records)

    def undelivered_count(self) -> int:
        now = self.clock.now()
        return sum(1 for r in self._records if not r.visible_at(now))
