"""API-plane chaos: degrading the *control plane* itself.

The paper's consistent-API layer (§IV) exists because AWS's control plane
misbehaves — throttling, staleness, transient 500s, the Dec-2012 ELB
outage.  The 8 injected fault types of the campaign are *state* faults
(wrong AMI, deleted key pair, ...); this module injects the orthogonal
*API-plane* faults that stress the monitor itself:

- **error bursts** — per-call transient ``ServiceUnavailable`` with a
  configurable per-service probability;
- **error storms** — windows of time during which the error probability
  spikes (modelling a regional control-plane incident);
- **latency brownouts** — a multiplier on the API latency model;
- **blackholes** — calls that hang until the caller's deadline instead of
  returning at all;
- **widened eventual-consistency windows** — a multiplier on the mean
  replication lag.

All randomness is drawn from one seeded stream per controller, so a
campaign run's chaos schedule is a pure function of its spec seed and the
campaign stays bit-for-bit deterministic at any worker count.

The degradation contract for downstream consumers: a chaotic API plane may
make diagnosis *inconclusive* — never wrong, and never a crashed run.
Chaos-injected errors carry ``chaos=True`` so the consistent-API client
can label the resulting failures *degraded* and the diagnosis engine can
record which verdicts were lost to API health rather than decided on
evidence.
"""

from __future__ import annotations

import dataclasses
import random
import typing as _t

from repro.cloud.errors import CloudError, ServiceUnavailable


class BlackholedCall(CloudError):
    """A call the degraded API plane will never answer.

    Raised *synchronously* by the chaos proxy as a signal; the
    consistent-API client translates it into "hang until my deadline,
    then time out".  Not retryable — retrying a blackhole immediately
    would defeat the hang semantics.
    """

    code = "RequestTimeout"
    retryable = False
    #: Marks the failure as injected by the chaos layer (vs a real answer).
    chaos = True


#: Coarse service taxonomy for per-service knobs, mirroring how a real
#: control-plane incident hits one service (ELB in Dec-2012) while the
#: others stay healthy.
ELB_METHODS_PREFIXES = ("describe_instance_health",)


def service_of(method: str) -> str:
    """Map an API method name to its owning service family."""
    if "load_balancer" in method or method in ELB_METHODS_PREFIXES:
        return "elb"
    if (
        "scaling" in method
        or "launch_configuration" in method
        or method in ("suspend_processes", "resume_processes", "set_desired_capacity")
    ):
        return "autoscaling"
    return "ec2"


@dataclasses.dataclass(frozen=True)
class ErrorStorm:
    """A time window of elevated error probability.

    ``services=None`` hits every service; otherwise only the named ones.
    During the storm the effective error rate is ``max(base, intensity)``.
    """

    start: float
    duration: float
    intensity: float
    services: tuple[str, ...] | None = None

    def active(self, now: float) -> bool:
        return self.start <= now < self.start + self.duration

    def applies_to(self, service: str) -> bool:
        return self.services is None or service in self.services


@dataclasses.dataclass(frozen=True)
class ServiceChaos:
    """Per-service overrides of the profile-wide knobs."""

    error_rate: float | None = None
    blackhole_rate: float | None = None
    latency_multiplier: float | None = None


@dataclasses.dataclass(frozen=True)
class ChaosProfile:
    """One named level of API-plane degradation.

    All probabilities are per-call; multipliers of 1.0 are neutral.
    """

    name: str = "custom"
    #: Per-call probability of a transient ``ServiceUnavailable``.
    error_rate: float = 0.0
    #: Per-call probability the call hangs until the caller's deadline.
    blackhole_rate: float = 0.0
    #: Multiplier on every API latency sample (brownout).
    latency_multiplier: float = 1.0
    #: Multiplier on the mean eventual-consistency replication lag.
    consistency_lag_multiplier: float = 1.0
    #: Windows of spiked error probability.
    storms: tuple[ErrorStorm, ...] = ()
    #: Per-service overrides, keyed by ``service_of`` family.
    per_service: _t.Mapping[str, ServiceChaos] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        for knob in (self.error_rate, self.blackhole_rate):
            if not 0.0 <= knob <= 1.0:
                raise ValueError(f"chaos probabilities must be in [0, 1], got {knob}")
        if self.latency_multiplier < 1.0 or self.consistency_lag_multiplier < 1.0:
            raise ValueError("chaos multipliers must be >= 1.0 (chaos never speeds AWS up)")

    @property
    def enabled(self) -> bool:
        return (
            self.error_rate > 0
            or self.blackhole_rate > 0
            or self.latency_multiplier > 1.0
            or self.consistency_lag_multiplier > 1.0
            or bool(self.storms)
            or bool(self.per_service)
        )

    def rates_for(self, service: str, now: float) -> tuple[float, float]:
        """Effective (error_rate, blackhole_rate) for one service now."""
        override = self.per_service.get(service)
        error = self.error_rate if override is None or override.error_rate is None else override.error_rate
        blackhole = (
            self.blackhole_rate
            if override is None or override.blackhole_rate is None
            else override.blackhole_rate
        )
        for storm in self.storms:
            if storm.active(now) and storm.applies_to(service):
                error = max(error, storm.intensity)
        return error, blackhole

    def latency_multiplier_for(self, service: str) -> float:
        override = self.per_service.get(service)
        if override is not None and override.latency_multiplier is not None:
            return override.latency_multiplier
        return self.latency_multiplier


#: Named degradation levels, ordered none → severe.  The sweep
#: (:func:`repro.evaluation.sweeps.sweep_chaos`) walks these.
CHAOS_PROFILES: dict[str, ChaosProfile] = {
    "none": ChaosProfile(name="none"),
    "mild": ChaosProfile(
        name="mild",
        error_rate=0.02,
        latency_multiplier=1.5,
    ),
    "moderate": ChaosProfile(
        name="moderate",
        error_rate=0.08,
        blackhole_rate=0.004,
        latency_multiplier=3.0,
        consistency_lag_multiplier=2.0,
        storms=(ErrorStorm(start=180.0, duration=60.0, intensity=0.6),),
    ),
    "severe": ChaosProfile(
        name="severe",
        error_rate=0.20,
        blackhole_rate=0.02,
        latency_multiplier=6.0,
        consistency_lag_multiplier=4.0,
        storms=(
            ErrorStorm(start=120.0, duration=120.0, intensity=0.85),
            ErrorStorm(start=420.0, duration=90.0, intensity=0.7, services=("elb",)),
        ),
    ),
}

#: The sweep order (and the CLI's ``--chaos`` choices).
CHAOS_LEVELS = ("none", "mild", "moderate", "severe")


def get_profile(profile: ChaosProfile | str | None) -> ChaosProfile:
    """Resolve a profile object, a level name, or None (= no chaos)."""
    if profile is None:
        return CHAOS_PROFILES["none"]
    if isinstance(profile, ChaosProfile):
        return profile
    try:
        return CHAOS_PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown chaos profile {profile!r}; known: {', '.join(CHAOS_PROFILES)}"
        ) from None


@dataclasses.dataclass
class ChaosEvent:
    """One injected API-plane fault (bookkeeping for reports/metrics)."""

    time: float
    method: str
    kind: str  # "error" | "blackhole"


class ChaosController:
    """Decides, per API call, whether and how to degrade it.

    One controller per testbed, seeded from the run spec; every decision
    consumes exactly one draw from its private RNG stream, so the chaos
    schedule depends only on the seed and the deterministic call order.
    """

    def __init__(self, engine, profile: ChaosProfile | str | None, seed: int = 0) -> None:
        self.engine = engine
        self.profile = get_profile(profile)
        self._rng = random.Random(seed)
        self.events: list[ChaosEvent] = []
        self.counters: dict[str, int] = {"calls_seen": 0, "errors": 0, "blackholes": 0}

    @property
    def enabled(self) -> bool:
        return self.profile.enabled

    # -- decision points -------------------------------------------------------

    def before_call(self, method: str) -> None:
        """Raise the chaos fault for this call, if one is drawn."""
        self.counters["calls_seen"] += 1
        service = service_of(method)
        error_rate, blackhole_rate = self.profile.rates_for(service, self.engine.now)
        if error_rate <= 0 and blackhole_rate <= 0:
            return
        # One draw per call keeps the schedule stable as knobs change.
        roll = self._rng.random()
        if roll < blackhole_rate:
            self.counters["blackholes"] += 1
            self.events.append(ChaosEvent(self.engine.now, method, "blackhole"))
            raise BlackholedCall(f"chaos: {method} blackholed")
        if roll < blackhole_rate + error_rate:
            self.counters["errors"] += 1
            self.events.append(ChaosEvent(self.engine.now, method, "error"))
            error = ServiceUnavailable(f"chaos: {method} temporarily unavailable")
            error.chaos = True
            raise error

    def latency_multiplier(self, method: str | None = None) -> float:
        service = service_of(method) if method else "ec2"
        return self.profile.latency_multiplier_for(service)

    # -- wrappers --------------------------------------------------------------

    def wrap(self, api) -> "ChaosApiProxy":
        """A degraded facade over a :class:`~repro.cloud.api.CloudAPI`."""
        return ChaosApiProxy(api, self)

    def wrap_latency(self, latency) -> "ChaosLatency":
        """A brownout-multiplied view of a latency model."""
        return ChaosLatency(latency, self)


class ChaosApiProxy:
    """Duck-typed ``CloudAPI`` whose calls pass through the chaos gate.

    Non-API attributes (``calls``, ``principal``, ``subscribe``, ...) pass
    through untouched, so the proxy is a drop-in replacement wherever a
    ``CloudAPI`` is expected.
    """

    #: Public callables that are plumbing, not API calls.
    _PASSTHROUGH = frozenset({"with_principal", "subscribe"})

    def __init__(self, api, controller: ChaosController) -> None:
        self._api = api
        self._controller = controller

    def __getattr__(self, name: str):
        attr = getattr(self._api, name)
        if name.startswith("_") or name in self._PASSTHROUGH or not callable(attr):
            return attr

        def degraded_call(*args, **kwargs):
            self._controller.before_call(name)
            return attr(*args, **kwargs)

        return degraded_call

    def __repr__(self) -> str:
        return f"ChaosApiProxy({self._api!r}, profile={self._controller.profile.name})"


class ChaosLatency:
    """Latency model view with the brownout multiplier applied.

    ``percentile``/``mean`` deliberately report the *healthy* base model:
    the paper calibrates timeouts at the 95th percentile of measured
    (healthy) latencies, and a brownout must be able to blow through that
    calibration — auto-scaling the timeout with the brownout would hide
    exactly the degradation we want to measure.
    """

    def __init__(self, base, controller: ChaosController) -> None:
        self.base = base
        self.controller = controller

    def sample(self) -> float:
        return self.base.sample() * self.controller.latency_multiplier()

    def mean(self) -> float:
        return self.base.mean()

    @property
    def percentile(self):
        return getattr(self.base, "percentile", None)

    def __repr__(self) -> str:
        return f"ChaosLatency({self.base!r} x{self.controller.latency_multiplier()})"
