"""Compiled token replay: the conformance checker's hot path.

The interpreted replayer (:class:`~repro.process.instance.ProcessInstance`
over :class:`~repro.process.model.PetriNet`) is the semantic reference,
but it pays dict-and-frozenset prices on every event: ``fire`` copies the
whole marking dict, ``enabled`` iterates a frozenset of place objects,
and every step allocates a :class:`ReplayStep`.  At ~12 µs/check that
caps the pipeline around 82k checks/s — far off the millions/s an
always-on streaming engine needs (ROADMAP item 3).

:func:`compile_model` flattens the net once per model into a
:class:`CompiledReplayTable` — DFA-style integer activity ids, dense
place indices, per-transition input/output index tuples — and
:class:`CompiledInstance` replays against a plain ``list[int]`` marking
mutated in place: no per-event dict churn, no frozensets, no step
objects on the fit path.  :class:`CompiledReplayer` manages the per-trace
instances and offers a batch entry point that replays a whole run of
records in one pass over struct-of-arrays columns.

Equivalence with the interpreted replayer — identical status sequences,
fitness, markings and error contexts on the corpus and on arbitrary
hypothesis-generated interleavings — is locked down by
``tests/process/test_compiled_replay.py``.
"""

from __future__ import annotations

import typing as _t

from repro.process.instance import ProcessInstance, ReplayStep
from repro.process.model import ProcessModel

#: Cache attribute stashed on the model (mirrors ``ProcessModel._net``).
_TABLE_ATTR = "_compiled_replay_table"


class CompiledReplayTable:
    """Flat transition table for one compiled :class:`ProcessModel`.

    Immutable after construction and shared by every instance replaying
    the same model, so it is safe process-wide (warm workers reuse one).
    """

    __slots__ = (
        "model",
        "net",
        "activity_ids",
        "activity_names",
        "inputs",
        "outputs",
        "input_counts",
        "output_counts",
        "place_ids",
        "place_count",
        "initial_marking",
        "final_indices",
        "initial_produced",
    )

    def __init__(self, model: ProcessModel) -> None:
        self.model = model
        self.net = net = model.to_petri_net()
        index: dict[int, int] = {}

        def dense(place: int) -> int:
            if place not in index:
                index[place] = len(index)
            return index[place]

        names: list[str] = []
        ids: dict[str, int] = {}
        inputs: list[tuple[int, ...]] = []
        outputs: list[tuple[int, ...]] = []
        for name, (ins, outs) in net.transitions.items():
            ids[name] = len(names)
            names.append(name)
            inputs.append(tuple(sorted(dense(p) for p in ins)))
            outputs.append(tuple(sorted(dense(p) for p in outs)))
        for place in sorted(net.places):
            dense(place)

        self.activity_ids = ids
        self.activity_names = tuple(names)
        self.inputs = tuple(inputs)
        self.outputs = tuple(outputs)
        self.input_counts = tuple(len(t) for t in inputs)
        self.output_counts = tuple(len(t) for t in outputs)
        #: Dense index -> original place id (for marking snapshots).
        self.place_ids = tuple(
            place for place, _i in sorted(index.items(), key=lambda kv: kv[1])
        )
        self.place_count = len(index)
        marking = [0] * self.place_count
        for place, count in net.initial_marking.items():
            marking[index[place]] = count
        self.initial_marking = tuple(marking)
        self.final_indices = tuple(sorted(index[p] for p in net.final_places))
        #: The interpreted replayer counts the initial token as produced.
        self.initial_produced = 1


def compile_model(model: ProcessModel) -> CompiledReplayTable:
    """Compile (cached on the model, invalidated with its Petri net)."""
    table: CompiledReplayTable | None = getattr(model, _TABLE_ATTR, None)
    if table is None or table.net is not model.to_petri_net():
        table = CompiledReplayTable(model)
        setattr(model, _TABLE_ATTR, table)
    return table


class CompiledInstance:
    """Array-marking replay state for one trace; API-compatible with
    :class:`~repro.process.instance.ProcessInstance`."""

    __slots__ = (
        "table",
        "trace_id",
        "marking",
        "produced",
        "consumed",
        "missing",
        "last_fit",
        "_events",
    )

    def __init__(self, table: CompiledReplayTable, trace_id: str) -> None:
        self.table = table
        self.trace_id = trace_id
        self.marking: list[int] = list(table.initial_marking)
        self.produced = table.initial_produced
        self.consumed = 0
        self.missing = 0
        #: Last activity replayed fit (the FIT path keeps this a plain
        #: attribute read instead of a history scan).
        self.last_fit: str | None = None
        #: (time, activity, fit, missing) tuples; ReplaySteps on demand.
        self._events: list[tuple[float, str, bool, int]] = []

    # -- hot path -------------------------------------------------------------

    def is_enabled_id(self, tid: int) -> bool:
        marking = self.marking
        for place in self.table.inputs[tid]:
            if marking[place] <= 0:
                return False
        return True

    def replay_id(self, tid: int, time: float) -> bool:
        """Replay one event by transition id, forcing if unfit.

        Returns whether the event was fit (all input tokens present), and
        updates the marking in place plus the fitness counters — the
        compiled equivalent of ``PetriNet.fire(force=True)``.
        """
        table = self.table
        marking = self.marking
        missing = 0
        for place in table.inputs[tid]:
            if marking[place] > 0:
                marking[place] -= 1
            else:
                missing += 1
        for place in table.outputs[tid]:
            marking[place] += 1
        self.consumed += table.input_counts[tid]
        self.produced += table.output_counts[tid]
        fit = missing == 0
        if missing:
            self.missing += missing
        activity = table.activity_names[tid]
        if fit:
            self.last_fit = activity
        self._events.append((time, activity, fit, missing))
        return fit

    # -- ProcessInstance-compatible views -------------------------------------

    @property
    def model(self) -> ProcessModel:
        return self.table.model

    @property
    def net(self):
        return self.table.net

    @property
    def history(self) -> list[ReplayStep]:
        return [
            ReplayStep(time=t, activity=a, fit=f, missing_tokens=m)
            for t, a, f, m in self._events
        ]

    @property
    def started(self) -> bool:
        return bool(self._events)

    @property
    def completed(self) -> bool:
        marking = self.marking
        return any(marking[i] > 0 for i in self.table.final_indices)

    def last_activity(self) -> str | None:
        return self._events[-1][1] if self._events else None

    def last_fit_activity(self) -> str | None:
        return self.last_fit

    def enabled_activities(self) -> list[str]:
        return sorted(
            name
            for name, tid in self.table.activity_ids.items()
            if self.is_enabled_id(tid)
        )

    def is_enabled(self, activity: str) -> bool:
        tid = self.table.activity_ids.get(activity)
        return tid is not None and self.is_enabled_id(tid)

    def replay(self, activity: str, time: float = 0.0) -> ReplayStep:
        tid = self.table.activity_ids.get(activity)
        if tid is None:
            raise KeyError(
                f"activity {activity!r} not in model {self.table.model.model_id!r}"
            )
        self.replay_id(tid, time)
        t, a, fit, missing = self._events[-1]
        return ReplayStep(time=t, activity=a, fit=fit, missing_tokens=missing)

    def remaining_tokens(self) -> int:
        final = self.table.final_indices
        return sum(
            count
            for place, count in enumerate(self.marking)
            if count and place not in final
        )

    def fitness(self) -> float:
        if self.consumed == 0:
            return 1.0
        missing_part = 1 - self.missing / self.consumed
        if not self.completed:
            return missing_part
        remaining_part = 1 - self.remaining_tokens() / self.produced
        return 0.5 * missing_part + 0.5 * remaining_part

    def hypothesize_skipped(self, activity: str) -> list[str]:
        enabled = self.enabled_activities()
        if not enabled:
            enabled = sorted(self.table.model.start_activities)
        path = self.table.model.shortest_path(enabled, activity)
        if path is None or len(path) < 2:
            return []
        return path[:-1]

    def marking_dict(self) -> dict[int, int]:
        """Marking keyed by original place ids, zero entries elided —
        the exact shape :class:`ProcessInstance` keeps natively."""
        place_ids = self.table.place_ids
        return {
            place_ids[i]: count for i, count in enumerate(self.marking) if count
        }

    def snapshot(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "marking": self.marking_dict(),
            "history": [a for _t_, a, _f, _m in self._events],
            "enabled": self.enabled_activities(),
            "fitness": round(self.fitness(), 4),
        }


#: Either replay representation, as held in ``ConformanceChecker.instances``.
AnyInstance = _t.Union[ProcessInstance, CompiledInstance]


class CompiledReplayer:
    """Per-model replay engine: one shared table, one state per trace."""

    def __init__(self, model: ProcessModel) -> None:
        self.model = model
        self.table = compile_model(model)
        self.states: dict[str, CompiledInstance] = {}

    def instance_for(self, trace_id: str) -> CompiledInstance:
        state = self.states.get(trace_id)
        if state is None:
            state = CompiledInstance(self.table, trace_id)
            self.states[trace_id] = state
        return state

    def replay_batch(
        self,
        trace_ids: _t.Sequence[str],
        activities: _t.Sequence[str | None],
        times: _t.Sequence[float],
    ) -> list[bool | None]:
        """Replay a column of events in one pass.

        ``activities[i] is None`` (or an activity unknown to the model)
        yields ``None`` at that position — the caller classifies it
        UNKNOWN; otherwise the entry is the fit verdict.  One tight loop
        over parallel columns: the struct-of-arrays shape of
        :class:`~repro.logsys.batch.RecordBatch`.
        """
        table = self.table
        ids = table.activity_ids
        states = self.states
        verdicts: list[bool | None] = []
        append = verdicts.append
        for i, activity in enumerate(activities):
            tid = ids.get(activity) if activity is not None else None
            if tid is None:
                append(None)
                continue
            trace = trace_ids[i]
            state = states.get(trace)
            if state is None:
                state = CompiledInstance(table, trace)
                states[trace] = state
            append(state.replay_id(tid, times[i]))
        return verdicts
