"""Process models, token-replay conformance checking, and process mining.

POD-Diagnosis models a sporadic operation as an explicit process (Fig. 2:
the rolling upgrade).  This package provides:

- :mod:`repro.process.model` — a BPMN-flavoured process model (activities,
  XOR/AND gateways, loops) compiled to a Petri net for token replay;
- :mod:`repro.process.instance` — per-trace replay state;
- :mod:`repro.process.compiled` — the flat-transition-table replay engine
  the checker dispatches to on the hot path;
- :mod:`repro.process.conformance` — the conformance-checking service that
  classifies each log line as *fit*, *unfit*, *unknown* or *error* and
  derives the error context;
- :mod:`repro.process.mining` — offline discovery: string-distance log
  clustering, regex derivation, and directly-follows-graph discovery that
  reconstructs Fig. 2 from raw logs of successful runs.
"""

from repro.process.compiled import (
    CompiledInstance,
    CompiledReplayer,
    CompiledReplayTable,
    compile_model,
)
from repro.process.context import ProcessContext
from repro.process.conformance import ConformanceChecker, ConformanceResult
from repro.process.instance import ProcessInstance
from repro.process.model import Activity, PetriNet, ProcessModel

__all__ = [
    "Activity",
    "CompiledInstance",
    "CompiledReplayer",
    "CompiledReplayTable",
    "ConformanceChecker",
    "ConformanceResult",
    "PetriNet",
    "ProcessContext",
    "ProcessInstance",
    "ProcessModel",
    "compile_model",
]
