"""Process model: activities + edges, compiled to a Petri net.

The paper adapts the token-replay technique "from Petri Nets to the
semantics of BPMN".  We go the other way: the analyst (or the miner)
builds a BPMN-flavoured :class:`ProcessModel` — activities connected by
sequence flows, with XOR semantics at splits/joins by default and
explicitly declared AND (parallel) splits — and we compile it to a
:class:`PetriNet` on which standard token replay runs.

For XOR-only models (like Fig. 2's rolling upgrade: a sequence with one
loop) the compilation is the classic state-machine mapping: one place per
*merged* flow region; an edge ``A → B`` makes A's output place the same
as B's input place, and sharing places encodes XOR splits/joins.
"""

from __future__ import annotations

import dataclasses
import typing as _t


@dataclasses.dataclass(frozen=True)
class Activity:
    """A named process step."""

    name: str

    def __str__(self) -> str:
        return self.name


class ProcessModel:
    """Directed graph of activities with gateway semantics."""

    def __init__(self, model_id: str) -> None:
        self.model_id = model_id
        self.activities: dict[str, Activity] = {}
        self.edges: list[tuple[str, str]] = []
        self.start_activities: set[str] = set()
        self.end_activities: set[str] = set()
        #: Activities whose outgoing edges are AND-splits (tokens on all).
        self.parallel_splits: set[str] = set()
        #: Activities whose incoming edges are AND-joins (token from all).
        self.parallel_joins: set[str] = set()
        self._net: PetriNet | None = None

    # -- construction --------------------------------------------------------

    def add_activity(self, name: str) -> Activity:
        if name not in self.activities:
            self.activities[name] = Activity(name)
            self._net = None
        return self.activities[name]

    def add_edge(self, source: str, target: str) -> None:
        self.add_activity(source)
        self.add_activity(target)
        if (source, target) not in self.edges:
            self.edges.append((source, target))
            self._net = None

    def add_sequence(self, *names: str) -> None:
        """Convenience: chain activities in order."""
        for source, target in zip(names, names[1:]):
            self.add_edge(source, target)

    def mark_start(self, name: str) -> None:
        self.add_activity(name)
        self.start_activities.add(name)
        self._net = None

    def mark_end(self, name: str) -> None:
        self.add_activity(name)
        self.end_activities.add(name)
        self._net = None

    def mark_parallel_split(self, name: str) -> None:
        self.add_activity(name)
        self.parallel_splits.add(name)
        self._net = None

    def mark_parallel_join(self, name: str) -> None:
        self.add_activity(name)
        self.parallel_joins.add(name)
        self._net = None

    # -- queries ---------------------------------------------------------------

    def successors(self, name: str) -> list[str]:
        return [t for (s, t) in self.edges if s == name]

    def predecessors(self, name: str) -> list[str]:
        return [s for (s, t) in self.edges if t == name]

    def validate(self) -> list[str]:
        """Structural problems (empty list = sound enough to replay)."""
        problems = []
        if not self.start_activities:
            problems.append("no start activity declared")
        if not self.end_activities:
            problems.append("no end activity declared")
        for name in self.start_activities | self.end_activities:
            if name not in self.activities:
                problems.append(f"start/end activity {name!r} not in model")
        for name in self.end_activities:
            if name in self.activities and self.successors(name):
                # An end activity with outgoing edges would AND-split into
                # the sink on every firing, breaking single-token workflow
                # semantics.  Model loops from the end's predecessor (as
                # Fig. 2 does: the loop closes at 'new instance ready',
                # not at 'completed').
                problems.append(f"end activity {name!r} has outgoing edges")
        reachable = self._reachable_from(self.start_activities)
        for name in self.activities:
            if name not in reachable:
                problems.append(f"activity {name!r} unreachable from start")
        return problems

    def _reachable_from(self, roots: _t.Iterable[str]) -> set[str]:
        seen = set(roots)
        frontier = list(roots)
        while frontier:
            current = frontier.pop()
            for successor in self.successors(current):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return seen

    def shortest_path(self, sources: _t.Iterable[str], target: str) -> list[str] | None:
        """BFS path from any source to target (used to hypothesise
        skipped activities when an unfit event is observed)."""
        frontier: list[list[str]] = [[s] for s in sources]
        seen = set(sources)
        while frontier:
            path = frontier.pop(0)
            if path[-1] == target:
                return path
            for successor in self.successors(path[-1]):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(path + [successor])
        return None

    # -- compilation -------------------------------------------------------------

    def to_petri_net(self) -> "PetriNet":
        """Compile (cached) to a Petri net for token replay."""
        if self._net is None:
            self._net = _compile(self)
        return self._net

    def __repr__(self) -> str:
        return (
            f"ProcessModel({self.model_id!r}, activities={len(self.activities)},"
            f" edges={len(self.edges)})"
        )


class PetriNet:
    """A minimal place/transition net supporting weighted token replay.

    Transitions are labelled with activity names.  Places are integers.
    The marking is a dict place → token count.
    """

    def __init__(self) -> None:
        self.places: set[int] = set()
        #: activity name -> (input places, output places)
        self.transitions: dict[str, tuple[frozenset[int], frozenset[int]]] = {}
        self.initial_marking: dict[int, int] = {}
        self.final_places: set[int] = set()

    def add_place(self, place: int) -> None:
        self.places.add(place)

    def add_transition(self, name: str, inputs: _t.Iterable[int], outputs: _t.Iterable[int]) -> None:
        self.transitions[name] = (frozenset(inputs), frozenset(outputs))
        self.places.update(inputs)
        self.places.update(outputs)

    def enabled(self, marking: dict[int, int], name: str) -> bool:
        inputs, _outputs = self.transitions[name]
        return all(marking.get(p, 0) > 0 for p in inputs)

    def enabled_transitions(self, marking: dict[int, int]) -> list[str]:
        return sorted(t for t in self.transitions if self.enabled(marking, t))

    def fire(self, marking: dict[int, int], name: str, force: bool = False) -> tuple[dict[int, int], int]:
        """Fire a transition; returns (new marking, missing token count).

        With ``force=True`` missing input tokens are created (counted as
        *missing* for the fitness metric) so replay can continue — the
        standard token-replay recovery.
        """
        inputs, outputs = self.transitions[name]
        missing = 0
        new_marking = dict(marking)
        for place in inputs:
            if new_marking.get(place, 0) > 0:
                new_marking[place] -= 1
                if new_marking[place] == 0:
                    del new_marking[place]
            elif force:
                missing += 1
            else:
                raise ValueError(f"transition {name!r} not enabled")
        for place in outputs:
            new_marking[place] = new_marking.get(place, 0) + 1
        return new_marking, missing


def _compile(model: ProcessModel) -> PetriNet:
    """Compile a ProcessModel to a PetriNet.

    XOR semantics: each activity has one input region and one output
    region; an edge unifies the source's output region with the target's
    input region (union-find), so shared regions realise XOR splits and
    joins.  Activities marked as parallel splits/joins instead keep one
    distinct place per edge, realising AND semantics.
    """
    problems = model.validate()
    if problems:
        raise ValueError(f"model {model.model_id!r} invalid: {problems}")

    parent: dict[str, str] = {}

    def find(x: str) -> str:
        while parent.setdefault(x, x) != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        parent[find(a)] = find(b)

    # Region keys: ("out", activity) and ("in", activity); edges merge them
    # unless an AND gateway keeps per-edge places.
    def out_key(name: str, target: str) -> str:
        if name in model.parallel_splits:
            return f"out:{name}->{target}"
        return f"out:{name}"

    def in_key(name: str, source: str) -> str:
        if name in model.parallel_joins:
            return f"in:{source}->{name}"
        return f"in:{name}"

    for source, target in model.edges:
        union(out_key(source, target), in_key(target, source))

    # Collect distinct regions per activity side.
    region_ids: dict[str, int] = {}

    def region(key: str) -> int:
        root = find(key)
        if root not in region_ids:
            region_ids[root] = len(region_ids)
        return region_ids[root]

    net = PetriNet()
    # Dedicated source/sink places.
    source_place = -1
    sink_place = -2
    net.add_place(source_place)
    net.add_place(sink_place)

    for name in model.activities:
        inputs: set[int] = set()
        outputs: set[int] = set()
        for pred in model.predecessors(name):
            inputs.add(region(in_key(name, pred)))
        for succ in model.successors(name):
            outputs.add(region(out_key(name, succ)))
        if name in model.start_activities:
            inputs.add(source_place)
        if name in model.end_activities:
            outputs.add(sink_place)
        if not inputs:
            inputs.add(source_place)
        if not outputs:
            outputs.add(sink_place)
        net.add_transition(name, inputs, outputs)

    net.initial_marking = {source_place: 1}
    net.final_places = {sink_place}
    return net
