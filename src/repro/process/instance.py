"""Per-trace replay state: one live process instance.

Conformance checking "looks up the process instance, if it is known; if
not, a new instance is created" (§III.B.2).  The instance holds the Petri
net marking, the executed history, and the fitness counters (produced /
consumed / missing / remaining) that the standard token-replay fitness
formula uses.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.process.model import ProcessModel


@dataclasses.dataclass
class ReplayStep:
    """One executed event in this instance's history."""

    time: float
    activity: str
    fit: bool
    missing_tokens: int = 0


class ProcessInstance:
    """Token-replay state for one trace of one process model."""

    def __init__(self, model: ProcessModel, trace_id: str) -> None:
        self.model = model
        self.trace_id = trace_id
        self.net = model.to_petri_net()
        self.marking: dict[int, int] = dict(self.net.initial_marking)
        self.history: list[ReplayStep] = []
        # Fitness counters (van der Aalst, Process Mining, ch. 7.2).
        self.produced = 1  # the initial token
        self.consumed = 0
        self.missing = 0

    # -- state queries ---------------------------------------------------------

    @property
    def started(self) -> bool:
        return bool(self.history)

    @property
    def completed(self) -> bool:
        """A final-place token present and nothing else pending."""
        final_tokens = sum(self.marking.get(p, 0) for p in self.net.final_places)
        return final_tokens > 0

    def last_activity(self) -> str | None:
        return self.history[-1].activity if self.history else None

    def last_fit_activity(self) -> str | None:
        for step in reversed(self.history):
            if step.fit:
                return step.activity
        return None

    def enabled_activities(self) -> list[str]:
        return self.net.enabled_transitions(self.marking)

    def is_enabled(self, activity: str) -> bool:
        if activity not in self.net.transitions:
            return False
        return self.net.enabled(self.marking, activity)

    # -- replay -----------------------------------------------------------------

    def replay(self, activity: str, time: float = 0.0) -> ReplayStep:
        """Replay one event, forcing if unfit; returns the step record."""
        if activity not in self.net.transitions:
            raise KeyError(f"activity {activity!r} not in model {self.model.model_id!r}")
        fit = self.is_enabled(activity)
        self.marking, missing = self.net.fire(self.marking, activity, force=True)
        inputs, outputs = self.net.transitions[activity]
        self.consumed += len(inputs)
        self.produced += len(outputs)
        self.missing += missing
        step = ReplayStep(time=time, activity=activity, fit=fit, missing_tokens=missing)
        self.history.append(step)
        return step

    def remaining_tokens(self) -> int:
        """Tokens left on non-final places (the 'remaining' counter)."""
        return sum(
            count for place, count in self.marking.items() if place not in self.net.final_places
        )

    def fitness(self) -> float:
        """Token-replay fitness in [0, 1]: 1 means the trace fits exactly.

        For a completed trace this is the standard
        f = 1/2 (1 - missing/consumed) + 1/2 (1 - remaining/produced);
        for a still-running instance the remaining-token penalty is
        omitted — tokens parked mid-process are expected, not a deviation.
        """
        if self.consumed == 0:
            return 1.0
        missing_part = 1 - self.missing / self.consumed
        if not self.completed:
            return missing_part
        remaining_part = 1 - self.remaining_tokens() / self.produced
        return 0.5 * missing_part + 0.5 * remaining_part

    def hypothesize_skipped(self, activity: str) -> list[str]:
        """Activities that must have been skipped for ``activity`` to occur.

        From the error context of §III.B.2: "the hypothesized
        skipped/undone activities".  Computed as the shortest model path
        from any currently enabled activity to the unfit one; everything
        on that path before the observed activity — including the enabled
        activity itself, which was due but never executed — was skipped.
        """
        enabled = self.enabled_activities()
        if not enabled:
            enabled = sorted(self.model.start_activities)
        path = self.model.shortest_path(enabled, activity)
        if path is None or len(path) < 2:
            return []
        return path[:-1]

    def snapshot(self) -> dict:
        """A serialisable view of the current state (for result logs)."""
        return {
            "trace_id": self.trace_id,
            "marking": dict(self.marking),
            "history": [s.activity for s in self.history],
            "enabled": self.enabled_activities(),
            "fitness": round(self.fitness(), 4),
        }
