"""Model discovery: DFG → ProcessModel, plus the end-to-end pipeline.

``discover_model`` converts a directly-follows graph into a
:class:`~repro.process.model.ProcessModel` with noise thresholding —
the Disco-style frequency-based discovery the paper used offline.

``mine_from_storage`` is the full §III.A pipeline over the central log
storage: pull each trace's activity sequence (from the ``step:`` tags the
annotator applied) and discover the model.  With pre-tagged logs this is
deterministic; the raw-line variant (cluster → regex → tag) lives in the
examples and tests.
"""

from __future__ import annotations

import typing as _t

from repro.process.mining.dfg import DirectlyFollowsGraph
from repro.process.model import ProcessModel


def discover_model(
    dfg: DirectlyFollowsGraph,
    model_id: str = "discovered",
    min_edge_count: int = 1,
    start_ratio: float = 0.5,
    end_ratio: float = 0.5,
) -> ProcessModel:
    """Build a process model from a DFG.

    - edges below ``min_edge_count`` are dropped as noise;
    - start/end activities are those that begin/end a dominant share of
      traces (``start_ratio``/``end_ratio``).

    Raises :class:`ValueError` if no dominant start or end emerges — a
    sign the log is too noisy to discover from, matching the paper's
    caveat that "the granularity may be constrained by log granularity".
    """
    model = ProcessModel(model_id)
    for activity in dfg.activities():
        model.add_activity(activity)
    for source, target in dfg.edges(min_count=min_edge_count):
        model.add_edge(source, target)
    starts = dfg.dominant_starts(start_ratio)
    ends = dfg.dominant_ends(end_ratio)
    if not starts:
        raise ValueError("no dominant start activity; log too noisy to discover from")
    if not ends:
        raise ValueError("no dominant end activity; log too noisy to discover from")
    for activity in starts:
        model.mark_start(activity)
    for activity in ends:
        model.mark_end(activity)
    problems = model.validate()
    if problems:
        raise ValueError(f"discovered model is not sound: {problems}")
    return model


def traces_from_storage(storage, position_filter: _t.Container[str] = ("end",)) -> list[list[str]]:
    """Extract activity sequences per trace from annotated central logs.

    Only operation-type records with a recognised step tag contribute; by
    default only each activity's *end* line is used so one activity maps
    to one event (the same convention the paper's tagging pipeline used
    before feeding Disco).
    """
    traces: list[list[str]] = []
    for _trace_id, records in sorted(storage.traces().items()):
        sequence: list[str] = []
        for record in sorted(records, key=lambda r: r.time):
            if record.type != "operation":
                continue
            step = record.tag_value("step")
            position = record.tag_value("position")
            if step is None or step == "unclassified":
                continue
            if position_filter and position not in position_filter:
                continue
            sequence.append(step)
        if sequence:
            traces.append(sequence)
    return traces


def mine_from_storage(
    storage,
    model_id: str = "mined",
    min_edge_count: int = 1,
    position_filter: _t.Container[str] = ("end",),
) -> ProcessModel:
    """End-to-end: annotated central logs → discovered process model."""
    traces = traces_from_storage(storage, position_filter)
    if not traces:
        raise ValueError("central storage holds no usable traces")
    dfg = DirectlyFollowsGraph.from_traces(traces)
    return discover_model(dfg, model_id=model_id, min_edge_count=min_edge_count)
