"""Offline process mining (§III.A and the preliminary work [2]).

The pipeline that turns raw operation logs into a process model:

1. :mod:`cluster` — cluster log lines by string distance (ids and numbers
   masked first), one cluster per underlying template;
2. :mod:`regexgen` — derive a regular expression per cluster, with typed
   named capture groups for ids/numbers;
3. :mod:`dfg` — build the directly-follows graph over activity-tagged
   traces;
4. :mod:`discovery` — convert the DFG into a
   :class:`~repro.process.model.ProcessModel` (start/end detection, noise
   thresholding) and verify it replays the training traces.
"""

from repro.process.mining.cluster import LogCluster, cluster_lines, mask_line, similarity
from repro.process.mining.dfg import DirectlyFollowsGraph
from repro.process.mining.discovery import discover_model, mine_from_storage
from repro.process.mining.regexgen import derive_pattern, derive_regex

__all__ = [
    "DirectlyFollowsGraph",
    "LogCluster",
    "cluster_lines",
    "derive_pattern",
    "derive_regex",
    "discover_model",
    "mask_line",
    "mine_from_storage",
    "similarity",
]
