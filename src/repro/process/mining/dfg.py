"""Directly-follows graph over activity traces.

The core statistic behind discovery: "the algorithms derive causal
dependencies between events, e.g., that event A is always followed by
event B" (§III.A).  We count directly-follows pairs, start/end activities
and activity frequencies over a set of traces.
"""

from __future__ import annotations

import collections
import typing as _t


class DirectlyFollowsGraph:
    """Frequency-annotated directly-follows relation."""

    def __init__(self) -> None:
        self.edge_counts: collections.Counter = collections.Counter()
        self.activity_counts: collections.Counter = collections.Counter()
        self.start_counts: collections.Counter = collections.Counter()
        self.end_counts: collections.Counter = collections.Counter()
        self.trace_count = 0

    def add_trace(self, trace: _t.Sequence[str]) -> None:
        if not trace:
            return
        self.trace_count += 1
        self.start_counts[trace[0]] += 1
        self.end_counts[trace[-1]] += 1
        for activity in trace:
            self.activity_counts[activity] += 1
        for a, b in zip(trace, trace[1:]):
            self.edge_counts[(a, b)] += 1

    @classmethod
    def from_traces(cls, traces: _t.Iterable[_t.Sequence[str]]) -> "DirectlyFollowsGraph":
        dfg = cls()
        for trace in traces:
            dfg.add_trace(trace)
        return dfg

    # -- views --------------------------------------------------------------

    def activities(self) -> list[str]:
        return sorted(self.activity_counts)

    def edges(self, min_count: int = 1) -> list[tuple[str, str]]:
        """Edges seen at least ``min_count`` times (noise thresholding)."""
        return sorted(e for e, c in self.edge_counts.items() if c >= min_count)

    def successors(self, activity: str, min_count: int = 1) -> list[str]:
        return sorted(
            b for (a, b), c in self.edge_counts.items() if a == activity and c >= min_count
        )

    def dominant_starts(self, ratio: float = 0.5) -> list[str]:
        """Activities beginning at least ``ratio`` of traces."""
        if self.trace_count == 0:
            return []
        return sorted(
            a for a, c in self.start_counts.items() if c / self.trace_count >= ratio
        )

    def dominant_ends(self, ratio: float = 0.5) -> list[str]:
        if self.trace_count == 0:
            return []
        return sorted(a for a, c in self.end_counts.items() if c / self.trace_count >= ratio)

    def loop_edges(self) -> list[tuple[str, str]]:
        """Back edges: pairs (a, b) where both a→b and a path b→…→a exist.

        Reported for analyst inspection; discovery keeps them as ordinary
        XOR branches, which is how Fig. 2's upgrade loop appears.
        """
        edges = set(self.edge_counts)
        adjacency: dict[str, set[str]] = collections.defaultdict(set)
        for a, b in edges:
            adjacency[a].add(b)

        def reaches(src: str, dst: str) -> bool:
            seen, frontier = {src}, [src]
            while frontier:
                node = frontier.pop()
                for nxt in adjacency[node]:
                    if nxt == dst:
                        return True
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
            return False

        return sorted((a, b) for (a, b) in edges if reaches(b, a))

    def __repr__(self) -> str:
        return (
            f"DirectlyFollowsGraph(activities={len(self.activity_counts)},"
            f" edges={len(self.edge_counts)}, traces={self.trace_count})"
        )
