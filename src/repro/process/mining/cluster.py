"""String-distance clustering of log lines.

"We collected the logs from Asgard, clustered the log lines using a string
distance metric, and manually combined and named clusters at the desired
level of granularity" (§III.A).  We reproduce the automatic part: lines
are *masked* (ids, hashes and numbers replaced by type placeholders) and
greedily clustered by normalised similarity against each cluster's
representative.  The analyst's manual naming step is modelled by an
optional ``namer`` callable; the default derives a name from the stable
words of the template.
"""

from __future__ import annotations

import dataclasses
import difflib
import re
import typing as _t

#: Masking rules: (regex, placeholder). Order matters — most specific first.
MASKS: list[tuple[re.Pattern, str]] = [
    (re.compile(r"\bami-[0-9a-f]+\b"), "<AMI>"),
    (re.compile(r"\bi-[0-9a-f]+\b"), "<INSTANCE>"),
    (re.compile(r"\bsg-[0-9a-f]+\b"), "<SG>"),
    (re.compile(r"\blc-[0-9a-f]+\b"), "<LC>"),
    (re.compile(r"\belb-[0-9a-z-]+\b"), "<ELB>"),
    (re.compile(r"\basg-[0-9a-z-]+\b"), "<ASG>"),
    (re.compile(r"\d{4}-\d{2}-\d{2}[ T_]\d{2}:\d{2}:\d{2}[,.]?\d*"), "<TIME>"),
    (re.compile(r"\b\d+\b"), "<NUM>"),
]


def mask_line(line: str) -> str:
    """Replace volatile substrings with type placeholders."""
    for pattern, placeholder in MASKS:
        line = pattern.sub(placeholder, line)
    return line


def similarity(a: str, b: str) -> float:
    """Normalised string similarity in [0, 1] (difflib ratio on masks)."""
    return difflib.SequenceMatcher(None, mask_line(a), mask_line(b)).ratio()


@dataclasses.dataclass
class LogCluster:
    """A set of log lines believed to share one template."""

    representative: str  # masked template of the first member
    lines: list[str] = dataclasses.field(default_factory=list)
    name: str = ""

    def add(self, line: str) -> None:
        self.lines.append(line)

    def __len__(self) -> int:
        return len(self.lines)


def _default_namer(cluster: LogCluster) -> str:
    """Derive an activity-ish name from the template's stable words."""
    words = re.findall(r"[A-Za-z]+", cluster.representative)
    stop = {"the", "a", "an", "of", "for", "to", "in", "on", "is", "and", "with", "by"}
    kept = [w.lower() for w in words if w.lower() not in stop][:5]
    return "_".join(kept) if kept else "cluster"


def cluster_lines(
    lines: _t.Iterable[str],
    threshold: float = 0.82,
    namer: _t.Callable[[LogCluster], str] | None = None,
) -> list[LogCluster]:
    """Greedy agglomerative clustering by masked similarity.

    Each line joins the first existing cluster whose representative is at
    least ``threshold`` similar; otherwise it founds a new cluster.  The
    threshold default was tuned so Asgard-style messages with embedded ids
    cluster by template without merging distinct steps.
    """
    if not 0 < threshold <= 1:
        raise ValueError("threshold must be in (0, 1]")
    clusters: list[LogCluster] = []
    for line in lines:
        masked = mask_line(line)
        best: LogCluster | None = None
        best_score = threshold
        for cluster in clusters:
            score = difflib.SequenceMatcher(None, masked, cluster.representative).ratio()
            if score >= best_score:
                best = cluster
                best_score = score
        if best is None:
            best = LogCluster(representative=masked)
            clusters.append(best)
        best.add(line)
    namer = namer or _default_namer
    used: set[str] = set()
    for cluster in clusters:
        base = namer(cluster)
        name = base
        suffix = 2
        while name in used:
            name = f"{base}_{suffix}"
            suffix += 1
        used.add(name)
        cluster.name = name
    return clusters
