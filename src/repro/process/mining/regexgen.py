"""Regex derivation: from a cluster of log lines to a transformation rule.

"From this information, i.e., sets of log lines and the corresponding
activity names, we derived regular expressions matching the log lines, and
formed transformation rules: if (regex_i or regex_i+1 or ...) matches, add
tag [activity name] to the line" (§III.A).

The derivation works on the masked template: literal runs are escaped,
placeholders become typed named capture groups.  Group names follow the
paper's @fields keys (``amiid``, ``instanceid``, ``asgid``, ``num``...).
"""

from __future__ import annotations

import re

from repro.logsys.patterns import END, LogPattern
from repro.process.mining.cluster import LogCluster, mask_line

#: placeholder -> (base group name, sub-regex)
GROUP_SPECS: dict[str, tuple[str, str]] = {
    "<AMI>": ("amiid", r"ami-[0-9a-f]+"),
    "<INSTANCE>": ("instanceid", r"i-[0-9a-f]+"),
    "<SG>": ("sgid", r"sg-[0-9a-f]+"),
    "<LC>": ("lcid", r"lc-[0-9a-f]+"),
    "<ELB>": ("elbid", r"elb-[0-9a-z-]+"),
    "<ASG>": ("asgid", r"asg-[0-9a-z-]+"),
    "<TIME>": ("time", r"\d{4}-\d{2}-\d{2}[ T_]\d{2}:\d{2}:\d{2}[,.]?\d*"),
    "<NUM>": ("num", r"\d+"),
}

_PLACEHOLDER = re.compile("|".join(re.escape(p) for p in GROUP_SPECS))


def derive_regex(template: str) -> str:
    """Turn a masked template into a regex with named capture groups.

    Repeated placeholders of one type get numbered group names
    (``num``, ``num2``, ...), matching how the paper's @fields carry both
    an instance count and a total in one line.
    """
    parts: list[str] = []
    counts: dict[str, int] = {}
    cursor = 0
    for match in _PLACEHOLDER.finditer(template):
        parts.append(re.escape(template[cursor : match.start()]))
        base, sub = GROUP_SPECS[match.group(0)]
        counts[base] = counts.get(base, 0) + 1
        name = base if counts[base] == 1 else f"{base}{counts[base]}"
        parts.append(f"(?P<{name}>{sub})")
        cursor = match.end()
    parts.append(re.escape(template[cursor:]))
    return "".join(parts)


def derive_pattern(cluster: LogCluster, position: str = END, is_error: bool = False) -> LogPattern:
    """Build the :class:`LogPattern` transformation rule for a cluster.

    Raises :class:`ValueError` if the derived regex fails to match every
    member line — a signal the clustering threshold was too loose.
    """
    regex = derive_regex(cluster.representative)
    pattern = LogPattern(activity=cluster.name, regex=regex, position=position, is_error=is_error)
    for line in cluster.lines:
        if pattern.match(line) is None and pattern.match(mask_line(line)) is None:
            raise ValueError(
                f"derived regex for cluster {cluster.name!r} does not match member: {line!r}"
            )
    return pattern
