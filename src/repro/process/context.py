"""Process context: the paper's key abstraction.

"The key contribution made by our POD-Diagnosis approach is the use of
process context (such as operation process id, instance id, step id,
conformance status) to improve the success of error detection and
diagnosis."  A :class:`ProcessContext` carries exactly that information
from detection into diagnosis, where it selects and prunes fault trees.
"""

from __future__ import annotations

import dataclasses
import typing as _t


@dataclasses.dataclass
class ProcessContext:
    """Everything diagnosis knows about where an error happened."""

    process_id: str
    trace_id: str
    step: str | None = None
    position: str | None = None
    #: Outcome of the step, filled in by assertion evaluation.
    outcome: str | None = None
    #: Conformance status of the triggering line (fit/unfit/unknown/error).
    conformance: str | None = None
    #: Regex-extracted fields: instance id, asg id, ami id, counts...
    fields: dict[str, _t.Any] = dataclasses.field(default_factory=dict)
    #: Error context derived by conformance checking.
    last_valid_activity: str | None = None
    skipped_activities: list[str] = dataclasses.field(default_factory=list)

    @classmethod
    def from_record(cls, record) -> "ProcessContext":
        """Lift the annotations of a log record into a context object."""
        return cls(
            process_id=record.tag_value("process") or "unknown",
            trace_id=record.tag_value("trace") or "unknown",
            step=record.tag_value("step"),
            position=record.tag_value("position"),
            conformance=record.tag_value("conformance"),
            fields=dict(record.fields),
        )

    def merged_with(self, **updates) -> "ProcessContext":
        """Copy with overrides (contexts are treated as value objects)."""
        merged = dataclasses.replace(self)
        for key, value in updates.items():
            if key == "fields":
                merged.fields = {**merged.fields, **value}
            else:
                setattr(merged, key, value)
        return merged

    def describe(self) -> str:
        bits = [f"process={self.process_id}", f"trace={self.trace_id}"]
        if self.step:
            bits.append(f"step={self.step}")
        if self.conformance:
            bits.append(f"conformance={self.conformance}")
        return " ".join(bits)
