"""Process-model serialization and export.

Models are the analyst-facing artifact: they get reviewed, versioned and
re-discovered as processes evolve (§III.C).  This module round-trips a
:class:`~repro.process.model.ProcessModel` through a plain dict (for JSON
storage) and exports Graphviz DOT for documentation — the form Fig. 2 is
drawn in.
"""

from __future__ import annotations

import typing as _t

from repro.process.model import ProcessModel

SCHEMA_VERSION = 1


def model_to_dict(model: ProcessModel) -> dict:
    """A JSON-safe representation of the model."""
    return {
        "schema": SCHEMA_VERSION,
        "model_id": model.model_id,
        "activities": sorted(model.activities),
        "edges": [list(edge) for edge in model.edges],
        "start_activities": sorted(model.start_activities),
        "end_activities": sorted(model.end_activities),
        "parallel_splits": sorted(model.parallel_splits),
        "parallel_joins": sorted(model.parallel_joins),
    }


def model_from_dict(data: dict) -> ProcessModel:
    """Rebuild a model; raises ValueError on schema or shape problems."""
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"unsupported process model schema: {data.get('schema')!r}")
    model = ProcessModel(data["model_id"])
    for activity in data.get("activities", []):
        model.add_activity(activity)
    for source, target in data.get("edges", []):
        model.add_edge(source, target)
    for activity in data.get("start_activities", []):
        model.mark_start(activity)
    for activity in data.get("end_activities", []):
        model.mark_end(activity)
    for activity in data.get("parallel_splits", []):
        model.mark_parallel_split(activity)
    for activity in data.get("parallel_joins", []):
        model.mark_parallel_join(activity)
    problems = model.validate()
    if problems:
        raise ValueError(f"deserialized model invalid: {problems}")
    return model


def model_to_dot(model: ProcessModel, rankdir: str = "TB") -> str:
    """Graphviz DOT rendering (Fig. 2 style: boxes and arrows)."""
    lines = [
        f"digraph {_dot_id(model.model_id)} {{",
        f"  rankdir={rankdir};",
        '  node [shape=box, style=rounded, fontname="Helvetica"];',
    ]
    for activity in sorted(model.activities):
        attrs = []
        if activity in model.start_activities:
            attrs.append("peripheries=2")
        if activity in model.end_activities:
            attrs.append("style=\"rounded,bold\"")
        suffix = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  {_dot_id(activity)}{suffix};")
    for source, target in model.edges:
        style = ""
        # Back edges (loops) dashed, as Fig. 2 draws the upgrade loop.
        if model.shortest_path([target], source) is not None and source != target:
            style = " [style=dashed]"
        lines.append(f"  {_dot_id(source)} -> {_dot_id(target)}{style};")
    lines.append("}")
    return "\n".join(lines)


def _dot_id(name: str) -> str:
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return safe if safe and not safe[0].isdigit() else f"n_{safe}"
