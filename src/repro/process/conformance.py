"""Conformance checking service (§III.B.2).

For each incoming log line the service:

1. looks up (or creates) the process instance for the line's trace id;
2. classifies the line against the activity regexes;
3. tags it ``conformance:unclassified`` (treated as a detected error),
   ``conformance:error`` (known error line), ``conformance:fit`` or
   ``conformance:unfit``;
4. on any detected error, derives the *error context* — last valid state,
   last successfully executed activity, hypothesised skipped activities —
   and invokes the diagnosis callback.

Results are themselves logged (type ``conformance``) to central storage.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.logsys.patterns import PatternLibrary, classify_record
from repro.logsys.record import LogRecord
from repro.process.context import ProcessContext
from repro.process.instance import ProcessInstance
from repro.process.model import ProcessModel

FIT = "fit"
UNFIT = "unfit"
UNKNOWN = "unclassified"
ERROR = "error"


@dataclasses.dataclass
class ConformanceResult:
    """Outcome of checking one log line."""

    status: str
    activity: str | None
    trace_id: str
    context: ProcessContext
    #: Wall-clock cost of the check in seconds (the paper reports ~10 ms
    #: average when called locally).
    elapsed: float = 0.0

    @property
    def is_error(self) -> bool:
        return self.status in (UNFIT, UNKNOWN, ERROR)


class ConformanceChecker:
    """Near-real-time token-replay conformance over annotated records."""

    #: Simulated service time per check; calibrated to the paper's
    #: "responded on average in about 10ms".
    SERVICE_TIME = 0.010

    def __init__(
        self,
        model: ProcessModel,
        library: PatternLibrary,
        clock=None,
        storage=None,
        on_error: _t.Callable[[ConformanceResult], None] | None = None,
        obs=None,
    ) -> None:
        from repro.obs import NULL_OBS

        self.model = model
        self.library = library
        self.clock = clock
        self.storage = storage
        self.on_error = on_error
        self.instances: dict[str, ProcessInstance] = {}
        self.results: list[ConformanceResult] = []
        self.check_count = 0
        obs = obs or NULL_OBS
        self._tracer = obs.tracer if obs.enabled else None
        self._metrics = obs.metrics if obs.enabled else None

    def instance_for(self, trace_id: str) -> ProcessInstance:
        if trace_id not in self.instances:
            self.instances[trace_id] = ProcessInstance(self.model, trace_id)
        return self.instances[trace_id]

    def check(self, record: LogRecord) -> ConformanceResult:
        """Check one line; tags the record and returns the result.

        When tracing is on, the whole replay — including any diagnosis
        the error callback starts — runs inside a ``conformance`` span.
        """
        if self._tracer is None:
            return self._check(record)
        with self._tracer.span("check", "conformance") as span:
            result = self._check(record)
            span.set(status=result.status, activity=result.activity, trace=result.trace_id)
        return result

    def _check(self, record: LogRecord) -> ConformanceResult:
        self.check_count += 1
        trace_id = record.tag_value("trace") or "unknown"
        instance = self.instance_for(trace_id)
        # Classify-once: pipeline-fed records arrive already classified by
        # the noise filter / annotator; only direct callers pay the scan.
        classification = classify_record(self.library, record, self._metrics)
        context = ProcessContext.from_record(record)
        context.last_valid_activity = instance.last_fit_activity()

        if not classification.matched:
            status = UNKNOWN
            activity = None
        elif classification.pattern.is_error:
            status = ERROR
            activity = classification.activity
        else:
            activity = classification.activity
            if activity not in instance.net.transitions:
                status = UNKNOWN
            elif instance.is_enabled(activity):
                instance.replay(activity, time=record.time)
                status = FIT
            else:
                context.skipped_activities = instance.hypothesize_skipped(activity)
                instance.replay(activity, time=record.time)
                status = UNFIT
        if self._metrics is not None:
            self._metrics.inc(f"conformance.checks.{status}")
            if status in (FIT, UNFIT):
                self._metrics.inc("conformance.tokens_replayed")

        record.add_tag(f"conformance:{status}")
        context.conformance = status
        context.step = activity or context.step
        result = ConformanceResult(
            status=status,
            activity=activity,
            trace_id=trace_id,
            context=context,
            elapsed=self.SERVICE_TIME,
        )
        self.results.append(result)
        self._log_result(record, result)
        if result.is_error and self.on_error is not None:
            self.on_error(result)
        return result

    def _log_result(self, record: LogRecord, result: ConformanceResult) -> None:
        if self.storage is None:
            return
        time = self.clock.now() if self.clock is not None else record.time
        timestamp = self.clock.render() if self.clock is not None else record.timestamp
        message = (
            f"[conformance] [{result.trace_id}] line classified {result.status}"
            f" (activity={result.activity or 'n/a'})"
        )
        out = LogRecord(
            time=time,
            source="conformance-checking.log",
            message=message,
            type="conformance",
            timestamp=timestamp,
        )
        out.add_tag(f"trace:{result.trace_id}")
        out.add_tag(f"conformance:{result.status}")
        if result.activity:
            out.add_tag(f"step:{result.activity}")
        self.storage.append(out)

    # -- aggregate views -------------------------------------------------------

    def error_results(self) -> list[ConformanceResult]:
        return [r for r in self.results if r.is_error]

    def fitness_of(self, trace_id: str) -> float:
        return self.instance_for(trace_id).fitness()
