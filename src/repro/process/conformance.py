"""Conformance checking service (§III.B.2).

For each incoming log line the service:

1. looks up (or creates) the process instance for the line's trace id;
2. classifies the line against the activity regexes;
3. tags it ``conformance:unclassified`` (treated as a detected error),
   ``conformance:error`` (known error line), ``conformance:fit`` or
   ``conformance:unfit``;
4. on any detected error, derives the *error context* — last valid state,
   last successfully executed activity, hypothesised skipped activities —
   and invokes the diagnosis callback.

Results are themselves logged (type ``conformance``) to central storage.

Two replay engines implement the token game.  The interpreted
:class:`~repro.process.instance.ProcessInstance` is the semantic
reference; the default :class:`~repro.process.compiled.CompiledReplayer`
replays against a flat integer transition table with no per-check dict
churn and no :class:`ProcessContext` allocation on the fit path — same
verdicts (equivalence-tested), a fraction of the cost.  Pass
``compiled=False`` to pin the interpreted engine.
"""

from __future__ import annotations

import time as _time
import typing as _t

from repro.logsys.batch import RecordBatch, count_statuses
from repro.logsys.patterns import PatternLibrary, classify_record
from repro.logsys.record import LogRecord
from repro.process.compiled import CompiledReplayer
from repro.process.context import ProcessContext
from repro.process.instance import ProcessInstance
from repro.process.model import ProcessModel

FIT = "fit"
UNFIT = "unfit"
UNKNOWN = "unclassified"
ERROR = "error"

#: Per-status strings prebuilt once — the check tail runs per log line.
_STATUS_TAGS = {s: f"conformance:{s}" for s in (FIT, UNFIT, UNKNOWN, ERROR)}
_CHECK_COUNTERS = {s: f"conformance.checks.{s}" for s in (FIT, UNFIT, UNKNOWN, ERROR)}


class ConformanceResult:
    """Outcome of checking one log line.

    ``context`` is built lazily: the fit path of the compiled replayer
    defers the :class:`ProcessContext` (tag lookups + a fields-dict copy)
    until somebody actually reads it — error paths always build eagerly
    because the diagnosis callback consumes the context immediately.
    """

    __slots__ = ("status", "activity", "trace_id", "elapsed", "_context", "_deferred")

    def __init__(
        self,
        status: str,
        activity: str | None,
        trace_id: str,
        context: ProcessContext | None = None,
        elapsed: float = 0.0,
        deferred: tuple[LogRecord, str | None] | None = None,
    ) -> None:
        self.status = status
        self.activity = activity
        self.trace_id = trace_id
        #: Measured wall-clock cost of the check in seconds (the paper
        #: reports ~10 ms average for its remotely-deployed service; the
        #: local implementation cost sits orders of magnitude below the
        #: :data:`ConformanceChecker.SERVICE_TIME` calibration constant).
        self.elapsed = elapsed
        self._context = context
        self._deferred = deferred

    @property
    def context(self) -> ProcessContext:
        context = self._context
        if context is None:
            record, last_valid = self._deferred
            context = ProcessContext.from_record(record)
            context.last_valid_activity = last_valid
            context.conformance = self.status
            context.step = self.activity or context.step
            self._context = context
        return context

    @property
    def is_error(self) -> bool:
        return self.status in (UNFIT, UNKNOWN, ERROR)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConformanceResult):
            return NotImplemented
        return (
            self.status == other.status
            and self.activity == other.activity
            and self.trace_id == other.trace_id
            and self.context == other.context
        )

    def __repr__(self) -> str:
        return (
            f"ConformanceResult(status={self.status!r}, activity={self.activity!r},"
            f" trace_id={self.trace_id!r})"
        )


class ConformanceChecker:
    """Near-real-time token-replay conformance over annotated records."""

    #: Simulated service time per check; calibrated to the paper's
    #: "responded on average in about 10ms".  A calibration constant for
    #: the simulation's virtual clock — *not* what ``result.elapsed``
    #: reports, which is the measured implementation cost.
    SERVICE_TIME = 0.010

    def __init__(
        self,
        model: ProcessModel,
        library: PatternLibrary,
        clock=None,
        storage=None,
        on_error: _t.Callable[[ConformanceResult], None] | None = None,
        obs=None,
        compiled: bool = True,
    ) -> None:
        from repro.obs import NULL_OBS

        self.model = model
        self.library = library
        self.clock = clock
        self.storage = storage
        self.on_error = on_error
        self.results: list[ConformanceResult] = []
        self.check_count = 0
        self._replayer = CompiledReplayer(model) if compiled else None
        #: trace key -> replay state.  Compiled mode shares the replayer's
        #: state dict so both views stay coherent.
        self.instances: dict[str, _t.Any] = (
            self._replayer.states if self._replayer is not None else {}
        )
        obs = obs or NULL_OBS
        tracer = obs.tracer if obs.enabled else None
        if tracer is not None and not getattr(tracer, "enabled", True):
            # Metrics-only observability: a disabled tracer records
            # nothing, so skip its wrapper frames like a missing one.
            tracer = None
        self._tracer = tracer
        self._metrics = obs.metrics if obs.enabled else None
        #: Fused-ingest dispatch cache: (key, library, rows) — see
        #: :meth:`fused_rows`.
        self._fused_rows: tuple | None = None
        if self._tracer is None:
            # No span to open: route public calls straight to the
            # workers, skipping the wrapper frame on every check.
            self.check = self._check
            self.check_batch = self._check_batch_entry

    @property
    def compiled(self) -> bool:
        return self._replayer is not None

    def instance_for(self, trace_id: str):
        if self._replayer is not None:
            return self._replayer.instance_for(trace_id)
        if trace_id not in self.instances:
            self.instances[trace_id] = ProcessInstance(self.model, trace_id)
        return self.instances[trace_id]

    @staticmethod
    def _trace_key(record: LogRecord) -> str:
        """Replay-state key for one record.

        Trace-less records used to share one ``"unknown"`` instance, so
        unrelated sources corrupted each other's token state; they now
        key per source, isolating each log file's stream.
        """
        trace_id = record.tag_value("trace")
        if trace_id is not None:
            return trace_id
        return f"untraced:{record.source}"

    def check(self, record: LogRecord) -> ConformanceResult:
        """Check one line; tags the record and returns the result.

        When tracing is on, the whole replay — including any diagnosis
        the error callback starts — runs inside a ``conformance`` span.
        """
        if self._tracer is None:
            return self._check(record)
        with self._tracer.span("check", "conformance") as span:
            result = self._check(record)
            span.set(status=result.status, activity=result.activity, trace=result.trace_id)
        return result

    def _check(self, record: LogRecord) -> ConformanceResult:
        started = _time.perf_counter()
        self.check_count += 1
        if self._replayer is None:
            return self._finish(record, self._check_interpreted(record), started)
        # Compiled engine: one core call, tail inlined — extra dispatch
        # layers are measurable at the per-microsecond scale of a check.
        result = self._replay_compiled(record)
        status = result.status
        metrics = self._metrics
        if metrics is not None:
            metrics.inc(_CHECK_COUNTERS[status])
            if status == FIT or status == UNFIT:
                metrics.inc("conformance.tokens_replayed")
            metrics.inc("conformance.compiled.checks")
        # add_tag inlined for the known-shape status tag (same slots the
        # LogRecord methods maintain): first conformance:* tag wins the
        # index slot, duplicates are dropped — identical semantics.
        tag = _STATUS_TAGS[status]
        tag_set = record._tag_set
        if tag not in tag_set:
            tag_set.add(tag)
            record.tags.append(tag)
            index = record._tag_index
            if "conformance" not in index:
                index["conformance"] = status
        self.results.append(result)
        if self.storage is not None:
            self._log_result(record, result)
        result.elapsed = _time.perf_counter() - started
        if status != FIT and self.on_error is not None:
            self.on_error(result)
        return result

    # -- compiled engine -------------------------------------------------------

    def _replay_compiled(self, record: LogRecord) -> ConformanceResult:
        """Classify + replay one record on the compiled engine.

        Returns the bare result — counters, tagging, storage and the
        error callback are the caller's tail (inlined in :meth:`_check`,
        batched in :meth:`_check_batch`).
        """
        # tag_value("trace") inlined: "trace" has no ":" so the prefix
        # index answers directly.
        trace_id = record._tag_index.get("trace")
        if trace_id is None:
            trace_id = "untraced:" + record.source
        replayer = self._replayer
        states = replayer.states
        instance = states.get(trace_id)
        if instance is None:
            instance = replayer.instance_for(trace_id)
        library = self.library
        # Classify-once memo, checked inline; the helper also counts
        # memo hits, so route through it whenever metrics are live.
        if self._metrics is None and record.classified_by is library:
            classification = record.classification
        else:
            classification = classify_record(library, record, self._metrics)
        pattern = classification.pattern

        if pattern is None:
            return self._error_result(record, trace_id, UNKNOWN, None, instance)
        activity = pattern.activity
        if pattern.is_error:
            return self._error_result(record, trace_id, ERROR, activity, instance)
        tid = replayer.table.activity_ids.get(activity)
        if tid is None:
            return self._error_result(record, trace_id, UNKNOWN, None, instance)
        return self._replay_tid(record, trace_id, instance, tid, activity)

    def _replay_tid(
        self, record: LogRecord, trace_id: str, instance, tid: int, activity: str
    ) -> ConformanceResult:
        """Token-replay one pre-resolved transition id.

        The single replay core shared by the per-record reference path
        (:meth:`_replay_compiled`) and the fused ingest path
        (:meth:`fused_session`) — one implementation, so the two paths
        cannot drift.
        """
        table = self._replayer.table
        last_fit = instance.last_fit
        marking = instance.marking
        inputs = table.inputs[tid]
        for place in inputs:
            if marking[place] <= 0:
                return self._unfit_replay(record, trace_id, instance, tid, activity)
        # FIT: the hot path — fire inlined (the enabled scan above already
        # proved every input has a token), context deferred, no dict copies.
        for place in inputs:
            marking[place] -= 1
        for place in table.outputs[tid]:
            marking[place] += 1
        instance.consumed += table.input_counts[tid]
        instance.produced += table.output_counts[tid]
        instance.last_fit = activity
        instance._events.append((record.time, activity, True, 0))
        return ConformanceResult(FIT, activity, trace_id, deferred=(record, last_fit))

    def _unfit_replay(
        self, record: LogRecord, trace_id: str, instance, tid: int, activity: str
    ) -> ConformanceResult:
        """UNFIT: error context derived BEFORE the forced replay."""
        context = ProcessContext.from_record(record)
        context.last_valid_activity = instance.last_fit
        context.skipped_activities = instance.hypothesize_skipped(activity)
        instance.replay_id(tid, record.time)
        context.conformance = UNFIT
        context.step = activity
        return ConformanceResult(UNFIT, activity, trace_id, context=context)

    # -- fused ingest session --------------------------------------------------

    def fused_rows(self, library: PatternLibrary) -> dict:
        """Per-pattern replay dispatch for the fused ingest loop.

        Maps ``id(pattern)`` to ``(status_kind, tid, activity)``: error
        patterns short-circuit to ERROR, activities the model does not
        know to UNKNOWN, everything else to the transition id the replay
        core consumes directly — the dense step-id table that lets the
        fused loop feed the replayer without re-dispatching through tags.
        Cached per (library, table) pair; the library pin keeps pattern
        ids live so the id-keyed rows can never alias a collected object.
        """
        replayer = self._replayer
        key = (id(library), len(library.patterns), id(replayer.table))
        cached = self._fused_rows
        if cached is not None and cached[0] == key and cached[1] is library:
            return cached[2]
        activity_ids = replayer.table.activity_ids
        rows: dict[int, tuple] = {}
        for pattern in library.patterns:
            activity = pattern.activity
            if pattern.is_error:
                rows[id(pattern)] = (ERROR, None, activity)
            else:
                tid = activity_ids.get(activity)
                if tid is None:
                    rows[id(pattern)] = (UNKNOWN, None, None)
                else:
                    rows[id(pattern)] = (FIT, tid, activity)
        self._fused_rows = (key, library, rows)
        return rows

    def fused_session(self, pending: list | None = None):
        """One fused-ingest session: returns ``check(record, kind, tid,
        activity) -> ConformanceResult`` with every piece of hot state —
        the replay table arrays, the instance map, the results list, the
        status tag strings — bound once as closure cells instead of being
        re-resolved through ``self`` on every record.

        The caller already classified each record; ``(kind, tid,
        activity)`` comes from :meth:`fused_rows`.  The FIT replay is
        inlined (byte-for-byte the :meth:`_replay_tid` hot path; UNFIT
        and ERROR/UNKNOWN delegate to the shared cold helpers, so the
        reference and fused paths cannot drift).  Status tagging, the
        results list, result logging and the error callback keep the
        exact per-record reference order; counters, metrics and
        ``elapsed`` are settled once per batch by :meth:`fused_finish`.
        When ``pending`` is given, result logs are deferred into it (the
        caller owns the storage and extends it in one epilogue) instead
        of being appended to ``self.storage`` immediately.
        """
        replayer = self._replayer
        states = replayer.states
        instance_for = replayer.instance_for
        table = replayer.table
        inputs_tab = table.inputs
        outputs_tab = table.outputs
        input_counts = table.input_counts
        output_counts = table.output_counts
        results_append = self.results.append
        status_tags = _STATUS_TAGS
        storage = self.storage
        storage_append = storage.append if storage is not None else None
        pending_append = pending.append if pending is not None else None
        on_error = self.on_error
        error_result = self._error_result
        unfit_replay = self._unfit_replay
        result_record = self._result_record
        result_cls = ConformanceResult
        fit = FIT

        def check(record, kind, tid, activity):
            index = record._tag_index
            trace_id = index.get("trace")
            if trace_id is None:
                trace_id = "untraced:" + record.source
            instance = states.get(trace_id)
            if instance is None:
                instance = instance_for(trace_id)
            if tid is None:
                result = error_result(record, trace_id, kind, activity, instance)
                status = kind
            else:
                marking = instance.marking
                inputs = inputs_tab[tid]
                for place in inputs:
                    if marking[place] <= 0:
                        result = unfit_replay(record, trace_id, instance, tid, activity)
                        status = result.status
                        break
                else:
                    for place in inputs:
                        marking[place] -= 1
                    for place in outputs_tab[tid]:
                        marking[place] += 1
                    instance.consumed += input_counts[tid]
                    instance.produced += output_counts[tid]
                    last_fit = instance.last_fit
                    instance.last_fit = activity
                    instance._events.append((record.time, activity, True, 0))
                    result = result_cls(fit, activity, trace_id, deferred=(record, last_fit))
                    status = fit
            # add_tag inlined, same shape as _check.
            tag = status_tags[status]
            tag_set = record._tag_set
            if tag not in tag_set:
                tag_set.add(tag)
                record.tags.append(tag)
                if "conformance" not in index:
                    index["conformance"] = status
            results_append(result)
            if storage_append is not None:
                out = result_record(record, result)
                if pending_append is not None:
                    pending_append(out)
                else:
                    storage_append(out)
            if status != fit and on_error is not None:
                on_error(result)
            return result

        return check

    def fused_finish(self, results: list[ConformanceResult], elapsed: float) -> None:
        """Batched epilogue of a fused session: counters + amortised cost."""
        total = len(results)
        self.check_count += total
        if total == 0:
            return
        metrics = self._metrics
        if metrics is not None:
            for status, count in count_statuses([r.status for r in results]).items():
                metrics.inc(_CHECK_COUNTERS[status], count)
                if status == FIT or status == UNFIT:
                    metrics.inc("conformance.tokens_replayed", count)
            metrics.inc("conformance.batch.records", total)
            metrics.inc("conformance.compiled.checks", total)
        per_check = elapsed / total
        for result in results:
            result.elapsed = per_check

    def _error_result(
        self, record: LogRecord, trace_id: str, status: str,
        activity: str | None, instance,
    ) -> ConformanceResult:
        """UNKNOWN / ERROR: no replay; eager context for the callback."""
        context = ProcessContext.from_record(record)
        context.last_valid_activity = instance.last_fit_activity()
        context.conformance = status
        context.step = activity or context.step
        return ConformanceResult(status, activity, trace_id, context=context)

    # -- interpreted engine (the semantic reference) ---------------------------

    def _check_interpreted(self, record: LogRecord) -> ConformanceResult:
        trace_id = self._trace_key(record)
        instance = self.instance_for(trace_id)
        # Classify-once: pipeline-fed records arrive already classified by
        # the noise filter / annotator; only direct callers pay the scan.
        classification = classify_record(self.library, record, self._metrics)
        context = ProcessContext.from_record(record)
        context.last_valid_activity = instance.last_fit_activity()

        if not classification.matched:
            status = UNKNOWN
            activity = None
        elif classification.pattern.is_error:
            status = ERROR
            activity = classification.activity
        else:
            activity = classification.activity
            if activity not in instance.net.transitions:
                status = UNKNOWN
            elif instance.is_enabled(activity):
                instance.replay(activity, time=record.time)
                status = FIT
            else:
                context.skipped_activities = instance.hypothesize_skipped(activity)
                instance.replay(activity, time=record.time)
                status = UNFIT
        context.conformance = status
        context.step = activity or context.step
        return ConformanceResult(status, activity, trace_id, context=context)

    # -- shared tail -----------------------------------------------------------

    def _finish(
        self, record: LogRecord, result: ConformanceResult, started: float
    ) -> ConformanceResult:
        status = result.status
        if self._metrics is not None:
            self._metrics.inc(_CHECK_COUNTERS[status])
            if status == FIT or status == UNFIT:
                self._metrics.inc("conformance.tokens_replayed")
            if self._replayer is not None:
                self._metrics.inc("conformance.compiled.checks")
        record.add_tag(_STATUS_TAGS[status])
        self.results.append(result)
        self._log_result(record, result)
        # The measured check cost excludes any diagnosis the callback
        # starts — that time belongs to diagnosis, not the check.
        result.elapsed = _time.perf_counter() - started
        if result.is_error and self.on_error is not None:
            self.on_error(result)
        return result

    # -- batch entry point -----------------------------------------------------

    def check_batch(self, records) -> list[ConformanceResult]:
        """Check a run of records in one pass.

        Accepts a sequence of :class:`LogRecord` or a pre-shredded
        :class:`~repro.logsys.batch.RecordBatch`.  Semantics are identical
        to calling :meth:`check` per record (same verdicts, tags, storage
        logs, error callbacks, in order) but the per-record overheads are
        hoisted: one span for the whole batch, counters incremented once
        per status from a single-pass histogram, per-result ``elapsed``
        amortised over the batch.
        """
        if self._tracer is None:
            return self._check_batch_entry(records)
        with self._tracer.span("check_batch", "conformance") as span:
            results = self._check_batch_entry(records)
            span.set(records=len(results))
        return results

    def _check_batch_entry(self, records) -> list[ConformanceResult]:
        batch = records if isinstance(records, RecordBatch) else RecordBatch(records)
        return self._check_batch(batch)

    def _check_batch(self, batch: RecordBatch) -> list[ConformanceResult]:
        started = _time.perf_counter()
        total = len(batch)
        if total == 0:
            return []
        results: list[ConformanceResult] = []
        if self._replayer is not None:
            # Compiled: the same fused session the batch ingest pipeline
            # drives — classify once, resolve the dense dispatch row,
            # replay through the shared core, settle counters in one
            # epilogue.  Per-record order (tag → log → error callback)
            # matches sequential check() exactly.
            library = self.library
            rows = self.fused_rows(library)
            metrics = self._metrics
            unmatched = (UNKNOWN, None, None)
            fused_check = self.fused_session()
            for record in batch.records:
                if metrics is None and record.classified_by is library:
                    classification = record.classification
                else:
                    classification = classify_record(library, record, metrics)
                pattern = classification.pattern
                if pattern is None:
                    kind, tid, activity = unmatched
                else:
                    kind, tid, activity = rows.get(id(pattern), unmatched)
                results.append(fused_check(record, kind, tid, activity))
            self.fused_finish(results, _time.perf_counter() - started)
            return results
        self.check_count += total
        for record in batch.records:
            results.append(self._check_interpreted(record))
        if self._metrics is not None:
            metrics = self._metrics
            for status, count in count_statuses([r.status for r in results]).items():
                metrics.inc(_CHECK_COUNTERS[status], count)
                if status == FIT or status == UNFIT:
                    metrics.inc("conformance.tokens_replayed", count)
            metrics.inc("conformance.batch.records", total)
        per_check = (_time.perf_counter() - started) / total
        append = self.results.append
        log_results = self.storage is not None
        on_error = self.on_error
        for record, result in zip(batch.records, results):
            record.add_tag(_STATUS_TAGS[result.status])
            result.elapsed = per_check
            append(result)
            if log_results:
                self._log_result(record, result)
        if on_error is not None:
            for result in results:
                if result.is_error:
                    on_error(result)
        return results

    def _result_record(self, record: LogRecord, result: ConformanceResult) -> LogRecord:
        time = self.clock.now() if self.clock is not None else record.time
        timestamp = self.clock.render() if self.clock is not None else record.timestamp
        message = (
            f"[conformance] [{result.trace_id}] line classified {result.status}"
            f" (activity={result.activity or 'n/a'})"
        )
        out = LogRecord(
            time=time,
            source="conformance-checking.log",
            message=message,
            type="conformance",
            timestamp=timestamp,
        )
        out.add_tag(f"trace:{result.trace_id}")
        out.add_tag(f"conformance:{result.status}")
        if result.activity:
            out.add_tag(f"step:{result.activity}")
        return out

    def _log_result(self, record: LogRecord, result: ConformanceResult) -> None:
        if self.storage is None:
            return
        self.storage.append(self._result_record(record, result))

    # -- aggregate views -------------------------------------------------------

    def error_results(self) -> list[ConformanceResult]:
        return [r for r in self.results if r.is_error]

    def fitness_of(self, trace_id: str) -> float:
        return self.instance_for(trace_id).fitness()
