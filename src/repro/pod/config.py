"""POD-Diagnosis configuration.

One :class:`PodConfig` per watched operation type describes the target
(desired) state the assertions compare against — the paper's
"configuration repository" — plus service tuning (watchdog calibration,
assertion convergence timeouts).
"""

from __future__ import annotations

import dataclasses

from repro.operations.rolling_upgrade import (
    DEFAULT_WATCHDOG_INTERVAL,
    DEFAULT_WATCHDOG_SLACK,
)


@dataclasses.dataclass
class PodConfig:
    """Target state + tuning for one watched rolling upgrade."""

    asg_name: str
    elb_name: str
    desired_capacity: int
    expected_image_id: str
    expected_key_name: str
    expected_instance_type: str
    expected_security_groups: list[str]
    lc_name: str
    #: Upgrade batch size k: during the upgrade at least N' = N - k
    #: instances must stay in service (§II's availability floor).
    batch_size: int = 1
    #: Watchdog calibration (95th-percentile step gap, §IV).
    watchdog_interval: float = DEFAULT_WATCHDOG_INTERVAL
    watchdog_slack: float = DEFAULT_WATCHDOG_SLACK
    #: Convergence window for count/ELB assertions.
    assertion_convergence_timeout: float = 30.0
    #: Operation start time: bounds historical queries during diagnosis.
    operation_start: float = 0.0

    def as_repository(self) -> dict:
        """The config-repository dict assertions resolve expectations from.

        Mutable by design: a scale-in operated through proper channels
        would update ``desired_capacity`` here; the evaluation deliberately
        does *not* (the interference is unannounced), which is what turns
        concurrent scale-ins into detected anomalies.
        """
        return {
            "asg_name": self.asg_name,
            "elb_name": self.elb_name,
            "desired_capacity": self.desired_capacity,
            "min_in_service": max(1, self.desired_capacity - self.batch_size),
            "expected_image_id": self.expected_image_id,
            "expected_key_name": self.expected_key_name,
            "expected_instance_type": self.expected_instance_type,
            "expected_security_groups": list(self.expected_security_groups),
            "lc_name": self.lc_name,
            "since": self.operation_start,
        }
