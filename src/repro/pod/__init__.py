"""POD-Diagnosis facade: the paper's Fig. 1, wired and ready."""

from repro.pod.config import PodConfig
from repro.pod.service import Detection, PODDiagnosis

__all__ = ["Detection", "PODDiagnosis", "PodConfig"]
