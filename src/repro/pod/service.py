"""The POD-Diagnosis service: Fig. 1 assembled.

Wires together the log pipeline, conformance checking, assertion
evaluation, fault trees and the diagnosis engine over a simulated cloud.
One service instance watches one operation process type (here: rolling
upgrade); call :meth:`watch` for each operation node's log stream.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.assertions.base import AssertionEnvironment
from repro.assertions.consistent_api import ConsistentApiClient, RetryBudget
from repro.assertions.evaluation import AssertionEvaluationService
from repro.assertions.library import standard_rolling_upgrade_assertions
from repro.diagnosis.engine import DiagnosisEngine
from repro.diagnosis.tests import shared_standard_probes
from repro.faulttree.library import shared_standard_fault_trees
from repro.logsys.annotator import ProcessAnnotator
from repro.logsys.central import CentralLogProcessor
from repro.logsys.filters import NoiseFilter
from repro.logsys.pipeline import LocalLogProcessor
from repro.logsys.record import LogStream
from repro.logsys.storage import CentralLogStorage
from repro.logsys.timers import TimerSetter
from repro.logsys.trigger import Trigger
from repro.operations.rolling_upgrade import (
    build_pattern_library,
    install_watchdog,
    reference_process_model,
)
from repro.pod.config import PodConfig
from repro.process.conformance import ConformanceChecker


@dataclasses.dataclass
class Detection:
    """One detected anomaly (unit of the paper's precision/recall)."""

    time: float
    kind: str  # "assertion" | "conformance"
    detail: str
    cause: str  # trigger path for assertions; status for conformance
    trace_id: str
    step: str | None


class PODDiagnosis:
    """Process-Oriented Dependability Diagnosis over a simulated cloud."""

    def __init__(
        self,
        cloud,
        config: PodConfig,
        model=None,
        assertions: dict | None = None,
        principal: str = "pod-diagnosis",
        seed: int = 0,
        profile=None,
        chaos=None,
        obs=None,
    ) -> None:
        from repro.obs import NULL_OBS

        #: Observability layer threaded through every pipeline component
        #: (spans + metrics); the shared disabled instance by default.
        self.obs = obs or NULL_OBS
        self.cloud = cloud
        self.config = config
        self._seed = seed
        #: Optional :class:`~repro.cloud.chaos.ChaosController` degrading
        #: the API plane this service observes through.
        self.chaos = chaos
        engine = cloud.engine
        self.engine = engine
        self.storage = CentralLogStorage()
        if profile is None:
            # Warm shared copy: the profile bundle (compiled pattern
            # library, process model, bindings factory) is immutable
            # during runs, so every service in this process reuses one.
            from repro.operations.profile import shared_rolling_upgrade_profile

            profile = shared_rolling_upgrade_profile()
        self.profile = profile
        self.library = profile.library
        self.model = model or profile.model

        # Assertion evaluation (Fig. 4).  Latency streams are seeded per
        # service instance so independent runs draw independent timings.
        from repro.sim.latency import aws_api_latency

        api = cloud.api(principal)
        latency = aws_api_latency(seed=seed + 101)
        if chaos is not None and chaos.enabled:
            # Degrade the plane POD observes through, and enable the full
            # hardening stack (jitter, retry budget, circuit breaker) —
            # keeping the legacy client untouched when chaos is off so
            # existing seeded runs stay bit-for-bit identical.
            api = chaos.wrap(api)
            latency = chaos.wrap_latency(latency)
            client = ConsistentApiClient(
                engine,
                api,
                latency=latency,
                seed=seed + 103,
                jitter=True,
                retry_budget=RetryBudget(capacity=32.0, refill_rate=0.75),
                breaker_threshold=6,
                breaker_cooldown=45.0,
                obs=self.obs,
            )
        else:
            client = ConsistentApiClient(engine, api, latency=latency, obs=self.obs)
        self.env = AssertionEnvironment(
            engine=engine,
            client=client,
            monitor=cloud.monitor,
            config=config.as_repository(),
        )
        # Extended observability surfaces for diagnostic probes.
        self.env.state = cloud.state
        self.env.trail = cloud.trail
        self.env.operation_api_calls = cloud.api("asgard").calls
        self.assertions = AssertionEvaluationService(
            self.env, storage=self.storage, on_failure=self._on_assertion_failure,
            obs=self.obs,
        )
        registry = assertions or standard_rolling_upgrade_assertions(
            count_timeout=config.assertion_convergence_timeout,
            elb_timeout=config.assertion_convergence_timeout,
        )
        self.assertions.register_all(registry)

        # Error diagnosis (fault trees + probes).  Shared warm copies:
        # diagnosis instantiates per-request tree copies and probes are
        # stateless, so the registries are safe to reuse process-wide.
        self.trees = shared_standard_fault_trees()
        self.probes = shared_standard_probes()
        self.diagnosis = DiagnosisEngine(
            engine,
            self.trees,
            self.assertions,
            self.probes,
            storage=self.storage,
            seed=seed,
            step_aliases=getattr(profile, "step_aliases", {}),
            obs=self.obs,
        )

        # Conformance checking.
        self.conformance = ConformanceChecker(
            self.model,
            self.library,
            clock=engine.clock,
            storage=self.storage,
            on_error=self._on_conformance_error,
            obs=self.obs,
        )

        # Timers (watchdog armed per watch()).
        self.timers = TimerSetter(engine)
        install_watchdog(
            self.timers,
            self.assertions,
            interval=config.watchdog_interval,
            slack=config.watchdog_slack,
            assertion_ids=list(profile.watchdog_assertions),
            start_activity=profile.watchdog_start,
            end_activity=profile.watchdog_end,
            align_activities=profile.watchdog_aligns,
            name=f"{profile.profile_id}-watchdog",
        )

        # Central log processor for third-party failure lines.
        self.central = CentralLogProcessor(self.storage, self.diagnosis.diagnose_external)

        self.detections: list[Detection] = []
        self.processors: list[LocalLogProcessor] = []

    # -- wiring ------------------------------------------------------------------

    def watch(self, stream: LogStream, trace_id: str) -> LocalLogProcessor:
        """Attach a local log processor to one operation node's log."""
        annotator = ProcessAnnotator(
            self.library, self.model.model_id, trace_id, obs=self.obs
        )
        processor = LocalLogProcessor(
            noise_filter=NoiseFilter(
                self.library, passthrough_unmatched=True, obs=self.obs
            ),
            process_annotator=annotator,
            assertion_annotator=self.profile.bindings_factory(),
            trigger=Trigger(
                conformance=self.conformance.check,
                assertions=self.assertions.trigger_from_log,
            ),
            storage=self.storage,
            timer_setter=self.timers,
            obs=self.obs,
        )
        processor.attach(stream)
        self.processors.append(processor)
        return processor

    # -- detection bookkeeping ------------------------------------------------------

    def _on_assertion_failure(self, result) -> None:
        self.detections.append(
            Detection(
                time=result.time,
                kind="assertion",
                detail=result.assertion_id,
                cause=result.cause,
                trace_id=result.context.trace_id if result.context else "unknown",
                step=result.context.step if result.context else None,
            )
        )
        self.diagnosis.diagnose_assertion_failure(result)

    def _on_conformance_error(self, result) -> None:
        self.detections.append(
            Detection(
                time=self.engine.now,
                kind="conformance",
                detail=result.status,
                cause=result.status,
                trace_id=result.trace_id,
                step=result.activity,
            )
        )
        self.diagnosis.diagnose_conformance_error(result)

    # -- recovery plane ---------------------------------------------------------------

    def recovery_client(self, seed_offset: int = 211) -> ConsistentApiClient:
        """A hardened client for the recovery plane.

        Recovery actions mutate cloud state, so they always get the full
        hardening stack (full-jitter backoff, retry budget, circuit
        breaker) — and the same chaos wrapping the assertion plane sees,
        so a degraded API plane degrades recovery the same way it
        degrades diagnosis.  Seeded independently of the assertion
        client: recovery runs strictly after the upgrade phase, so the
        extra RNG stream never perturbs non-recovering runs.
        """
        from repro.sim.latency import aws_api_latency

        api = self.cloud.api("recovery")
        latency = aws_api_latency(seed=self._seed + seed_offset)
        if self.chaos is not None and self.chaos.enabled:
            api = self.chaos.wrap(api)
            latency = self.chaos.wrap_latency(latency)
        return ConsistentApiClient(
            self.engine,
            api,
            latency=latency,
            seed=self._seed + seed_offset + 1,
            jitter=True,
            retry_budget=RetryBudget(capacity=24.0, refill_rate=0.5),
            breaker_threshold=6,
            breaker_cooldown=45.0,
            obs=self.obs,
        )

    # -- views -----------------------------------------------------------------------

    @property
    def reports(self) -> list:
        return self.diagnosis.completed

    def assertion_detections(self) -> list[Detection]:
        return [d for d in self.detections if d.kind == "assertion"]

    def conformance_detections(self) -> list[Detection]:
        return [d for d in self.detections if d.kind == "conformance"]

    def quiesce(self, max_extra: float = 300.0, step: float = 5.0) -> None:
        """Run the simulation until in-flight evaluations/diagnoses drain.

        The campaign calls this after an operation ends so every triggered
        diagnosis completes before metrics are read.
        """
        deadline = self.engine.now + max_extra
        while self.engine.now < deadline:
            busy = self.assertions.in_flight > 0 or len(self.diagnosis.reports) > len(
                self.diagnosis.completed
            )
            if not busy:
                return
            self.engine.run(until=min(self.engine.now + step, deadline))
