"""The discrete-event engine.

A minimal, deterministic SimPy-style event loop.  Simulation *processes*
are Python generators that ``yield`` :class:`~repro.sim.events.Event`
objects; the engine resumes them when those events fire.  Determinism is
guaranteed by a (time, priority, sequence) heap ordering — two runs with
the same seed and the same schedule produce identical traces, which the
evaluation harness relies on.
"""

from __future__ import annotations

import heapq
import itertools
import typing as _t

from repro.sim.clock import SimClock
from repro.sim.events import AnyOf, Event, Timeout

#: Priority for ordinary events.
NORMAL = 1
#: Priority for urgent events (process resumption) at equal timestamps.
URGENT = 0


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Engine.run` at a target event."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The paper's operations get cancelled by concurrent interference (e.g. a
    scale-in terminating the instance an upgrade step is waiting on);
    interrupts model that preemption.
    """

    def __init__(self, cause: _t.Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an event: it fires when the generator finishes,
    carrying the generator's return value — so processes can wait on each
    other (``yield other_process``).
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, engine: "Engine", generator: _t.Generator, name: str | None = None) -> None:
        super().__init__(engine)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Event | None = None
        # Kick off the process at the current time.
        bootstrap = Event(engine)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: _t.Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            return
        event = Event(self.engine)
        event.callbacks.append(lambda _e: self._resume_with_interrupt(cause))
        event.succeed()

    def _resume_with_interrupt(self, cause: _t.Any) -> None:
        if not self.is_alive:
            return
        if self._target is not None and self._resume in self._target.callbacks:
            self._target.callbacks.remove(self._resume)
        self._target = None
        self._step(lambda: self._generator.throw(Interrupt(cause)))

    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            return
        self._target = None
        if event.ok:
            self._step(lambda: self._generator.send(event.value))
        else:
            self._step(lambda: self._generator.throw(event.value))

    def _step(self, advance: _t.Callable[[], _t.Any]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # Interrupt escaped the generator: treat as normal termination.
            self.succeed(None)
            return
        except Exception as exc:
            # The process crashed. If somebody is waiting on it, deliver the
            # exception to them (SimPy-style); otherwise it is a
            # fire-and-forget process and the error must not vanish.
            if self.callbacks:
                self.fail(exc)
                return
            raise
        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
            )
        self._target = target
        target.callbacks.append(self._resume)

    def __repr__(self) -> str:
        return f"<Process {self.name} {'alive' if self.is_alive else 'done'}>"


class Engine:
    """Deterministic discrete-event loop with a virtual clock."""

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock or SimClock()
        self._queue: list[tuple[float, int, int, Event]] = []
        self._sequence = itertools.count()

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now()

    # -- scheduling ------------------------------------------------------

    def _schedule(self, event: Event, delay: float, priority: int = NORMAL) -> None:
        heapq.heappush(self._queue, (self.now + delay, priority, next(self._sequence), event))

    def event(self) -> Event:
        """Create a fresh untriggered event bound to this engine."""
        return Event(self)

    def timeout(self, delay: float, value: _t.Any = None) -> Timeout:
        """An event that fires ``delay`` virtual seconds from now."""
        return Timeout(self, delay, value)

    def any_of(self, events: _t.Sequence[Event]) -> AnyOf:
        """An event that fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    def process(self, generator: _t.Generator, name: str | None = None) -> Process:
        """Start a new simulation process from ``generator``."""
        return Process(self, generator, name=name)

    # -- execution -------------------------------------------------------

    def step(self) -> None:
        """Pop and dispatch the next event. Raises IndexError when empty."""
        time, _priority, _seq, event = heapq.heappop(self._queue)
        self.clock.advance_to(time)
        event.processed = True
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: float | Event | None = None) -> _t.Any:
        """Run until the queue drains, a time is reached, or an event fires.

        - ``until=None``: run the queue to exhaustion.
        - ``until=<float>``: run events up to and including that time, then
          set the clock to exactly that time.
        - ``until=<Event>``: run until that event fires; returns its value
          (raising if the event failed).
        """
        if isinstance(until, Event):
            sentinel = until

            def _stop(_event: Event) -> None:
                raise StopSimulation

            if sentinel.processed:
                # Already dispatched: its callbacks ran and it will never
                # be popped again, so a stop callback would never fire.
                # Return its value immediately instead of draining the
                # entire queue and relying on the post-loop check.
                if not sentinel.ok:
                    raise sentinel.value
                return sentinel.value
            sentinel.callbacks.append(_stop)
            try:
                while self._queue:
                    self.step()
            except StopSimulation:
                if not sentinel.ok:
                    raise sentinel.value
                return sentinel.value
            if sentinel.triggered:
                if not sentinel.ok:
                    raise sentinel.value
                return sentinel.value
            raise RuntimeError("event queue drained before `until` event fired")

        if until is None:
            while self._queue:
                self.step()
            return None

        horizon = float(until)
        if horizon < self.now:
            raise ValueError(f"cannot run until {horizon}: already at {self.now}")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self.clock.advance_to(horizon)
        return None

    def __repr__(self) -> str:
        return f"Engine(now={self.now:.3f}, pending={len(self._queue)})"
