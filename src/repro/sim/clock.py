"""Virtual clock for the simulation.

All timestamps in the reproduction are virtual seconds since the start of
the simulation.  The clock also renders timestamps in the log format the
paper's Asgard/Logstash excerpts use (``2013-11-19 11:48:01,100``), anchored
at an arbitrary epoch, so that synthetic logs look like the real ones.
"""

from __future__ import annotations

import datetime as _dt

#: Anchor used when rendering virtual times as wall-clock-looking strings.
#: Chosen to match the era of the paper's log excerpts.
DEFAULT_EPOCH = _dt.datetime(2013, 11, 19, 11, 0, 0)


class SimClock:
    """A monotonically advancing virtual clock.

    The engine owns one and advances it as events fire.  Components read it
    through :meth:`now` and format log timestamps with :meth:`render`.
    """

    def __init__(self, epoch: _dt.datetime | None = None) -> None:
        self._now = 0.0
        self._epoch = epoch or DEFAULT_EPOCH

    @property
    def epoch(self) -> _dt.datetime:
        """The wall-clock datetime corresponding to virtual time zero."""
        return self._epoch

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Advance the clock to ``t``.

        Raises :class:`ValueError` on attempts to move backwards: virtual
        time, like real time, is monotone.
        """
        if t < self._now:
            raise ValueError(f"clock cannot go backwards: {t} < {self._now}")
        self._now = t

    def render(self, t: float | None = None) -> str:
        """Render a virtual time as ``YYYY-MM-DD HH:MM:SS,mmm``.

        This is the timestamp format used by Asgard's log4j output, which
        the paper's excerpts show; reproducing it keeps the synthetic logs
        realistic for the regex layer.
        """
        if t is None:
            t = self._now
        moment = self._epoch + _dt.timedelta(seconds=t)
        return moment.strftime("%Y-%m-%d %H:%M:%S,") + f"{int(moment.microsecond / 1000):03d}"

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.3f})"
