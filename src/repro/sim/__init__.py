"""Discrete-event simulation substrate.

The POD-Diagnosis paper measures wall-clock behaviour on AWS: API call
latencies, instance boot times, diagnosis durations.  This package provides
the virtual-time substrate that replaces the AWS testbed: a deterministic
discrete-event engine with generator-based processes (``yield
engine.timeout(...)``), a virtual clock, and calibrated latency models.

Public API:

- :class:`~repro.sim.engine.Engine` — the event loop.
- :class:`~repro.sim.engine.Process` — a running simulation process.
- :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout` —
  awaitable primitives.
- :class:`~repro.sim.latency.LatencyModel` and the calibrated instances in
  :mod:`repro.sim.latency`.
"""

from repro.sim.clock import SimClock
from repro.sim.engine import Engine, Interrupt, Process, StopSimulation
from repro.sim.events import AnyOf, Event, Timeout
from repro.sim.latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
    aws_api_latency,
    instance_boot_latency,
)

__all__ = [
    "AnyOf",
    "ConstantLatency",
    "Engine",
    "Event",
    "Interrupt",
    "LatencyModel",
    "LogNormalLatency",
    "Process",
    "SimClock",
    "StopSimulation",
    "Timeout",
    "UniformLatency",
    "aws_api_latency",
    "instance_boot_latency",
]
