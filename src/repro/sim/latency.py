"""Calibrated latency models.

The paper's timing behaviour comes from two places: per-API-call latency
(the diagnosis log excerpt shows individual checks taking ~70-90 ms) and
operation step durations (instance replacement "in the order of minutes").
These models reproduce those magnitudes.  Each model draws from its own
``random.Random`` stream so that adding a new latency consumer does not
perturb the draws of existing ones (determinism under extension).
"""

from __future__ import annotations

import math
import random


class LatencyModel:
    """Base class: a distribution over non-negative durations (seconds)."""

    def sample(self) -> float:
        raise NotImplementedError

    def mean(self) -> float:
        """Analytic mean of the distribution, used by timeout calibration."""
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Always the same duration; handy in unit tests."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError("latency must be non-negative")
        self.value = value

    def sample(self) -> float:
        return self.value

    def mean(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"ConstantLatency({self.value})"


class UniformLatency(LatencyModel):
    """Uniform over [low, high]."""

    def __init__(self, low: float, high: float, seed: int = 0) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"invalid uniform bounds: [{low}, {high}]")
        self.low = low
        self.high = high
        self._rng = random.Random(seed)

    def sample(self) -> float:
        return self._rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class LogNormalLatency(LatencyModel):
    """Log-normal latency — the canonical heavy-tailed model for RPCs.

    Parameterised by the *median* and a shape sigma, optionally truncated
    at ``cap`` to avoid pathological tails destabilising the evaluation.
    """

    def __init__(self, median: float, sigma: float, seed: int = 0, cap: float | None = None) -> None:
        if median <= 0:
            raise ValueError("median must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.median = median
        self.sigma = sigma
        self.cap = cap
        self._mu = math.log(median)
        self._rng = random.Random(seed)

    def sample(self) -> float:
        value = self._rng.lognormvariate(self._mu, self.sigma)
        if self.cap is not None:
            value = min(value, self.cap)
        return value

    def mean(self) -> float:
        return math.exp(self._mu + self.sigma**2 / 2)

    def percentile(self, q: float) -> float:
        """Analytic quantile (0 < q < 1) — used for the paper's
        '95th-percentile timeout' calibration rule (§IV)."""
        if not 0 < q < 1:
            raise ValueError("q must be in (0, 1)")
        # Inverse normal CDF via Acklam's rational approximation is overkill
        # here; use the Moro/Beasley-Springer approach from scipy if present.
        from statistics import NormalDist

        z = NormalDist().inv_cdf(q)
        return math.exp(self._mu + self.sigma * z)

    def __repr__(self) -> str:
        return f"LogNormalLatency(median={self.median}, sigma={self.sigma})"


def aws_api_latency(seed: int = 0) -> LogNormalLatency:
    """Latency of a single cloud API call.

    Calibrated to the paper's diagnosis log excerpt, where consecutive
    on-demand checks complete in roughly 70-90 ms each, with occasional
    slow calls (retries against eventually-consistent endpoints push the
    tail towards seconds).
    """
    return LogNormalLatency(median=0.080, sigma=0.45, seed=seed, cap=5.0)


def instance_boot_latency(seed: int = 0) -> LogNormalLatency:
    """Time for the ASG to boot a replacement instance.

    The paper: replacement of one instance is "in the order of minutes".
    """
    return LogNormalLatency(median=95.0, sigma=0.25, seed=seed, cap=600.0)
