"""Awaitable primitives for the discrete-event engine.

The design follows the classic SimPy shape: a :class:`Event` can be
*triggered* (succeeded or failed); simulation processes ``yield`` events and
are resumed when the event fires.  We implement only the primitives the
reproduction needs — plain events, timeouts, and a disjunctive wait — to
keep the engine small and auditable.
"""

from __future__ import annotations

import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine

PENDING = "pending"
SUCCEEDED = "succeeded"
FAILED = "failed"


class Event:
    """A one-shot occurrence that processes can wait on.

    Events move from *pending* to either *succeeded* (carrying a value) or
    *failed* (carrying an exception).  Callbacks registered before the
    trigger run when the engine pops the event from its queue.

    Slotted: campaigns create millions of events (every timeout, API
    call and retry allocates one), so skipping the per-instance dict is
    a measurable allocation win on the hot path.
    """

    __slots__ = ("engine", "callbacks", "_state", "_value", "processed")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: list[_t.Callable[["Event"], None]] = []
        self._state = PENDING
        self._value: _t.Any = None
        #: Set by the engine when the event is dispatched (callbacks run).
        self.processed = False

    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled to fire."""
        return self._state != PENDING

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        return self._state == SUCCEEDED

    @property
    def value(self) -> _t.Any:
        """The success value or failure exception."""
        return self._value

    def succeed(self, value: _t.Any = None) -> "Event":
        """Trigger the event successfully, scheduling callbacks *now*."""
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        self._state = SUCCEEDED
        self._value = value
        self.engine._schedule(self, delay=0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiting processes see ``exception``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._state = FAILED
        self._value = exception
        self.engine._schedule(self, delay=0.0)
        return self

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self._state}>"


class Timeout(Event):
    """An event that fires after a fixed virtual delay."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: _t.Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(engine)
        self.delay = delay
        self._state = SUCCEEDED
        self._value = value
        engine._schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class AnyOf(Event):
    """Fires as soon as any of the given events fires.

    Its value is a dict mapping the already-fired events to their values.
    Used by the timer subsystem to race a periodic timer against a
    cancellation event.
    """

    __slots__ = ("events",)

    def __init__(self, engine: "Engine", events: _t.Sequence[Event]) -> None:
        super().__init__(engine)
        if not events:
            raise ValueError("AnyOf requires at least one event")
        self.events = list(events)
        for event in self.events:
            if event.processed:
                self._on_fire(event)
                break
            event.callbacks.append(self._on_fire)

    def _on_fire(self, fired_event: Event) -> None:
        if self.triggered:
            return
        fired = {e: e.value for e in self.events if e.processed or e is fired_event}
        self.succeed(fired)
