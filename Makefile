PYTHONPATH := src
export PYTHONPATH

.PHONY: check test bench bench-pytest chaos trace recover

# The fast gate for every push: tier-1 minus the slow full-campaign
# tests, plus the parallel-campaign determinism regression.
check:
	python -m pytest -q -m "not slow"
	python -m pytest -q tests/evaluation/test_parallel_campaign.py

# Seeded API-plane chaos regression (severe profile, zero crashed runs).
chaos:
	python -m pytest -q -m "chaos and not slow"

# Closed-loop recovery smoke: seeded recover-enabled campaign regressions
# (terminal classes per fault type, serial == parallel, chaos never crashes).
recover:
	python -m pytest -q -m "recovery and not slow"

# Observability smoke: traced seeded 8-run campaign, JSON export +
# span tree.  Fails if any pipeline stage stops producing spans.
trace:
	python -m repro trace-export --json trace.json --max-spans 40

# The complete tier-1 suite (what the roadmap's verify command runs).
test:
	python -m pytest -x -q

# Hot-path benchmarks + regression gate: compares the gated *ratio*
# metrics (classify-once speedup, prefilter speedup, fused-pipeline
# speedup, parallel speedup, chunking gain, cloud stale-read speedup,
# monitor tick ratio/speedup, snapshot sharing) against the committed
# BENCH_*.json baselines before rewriting them.  Commit the rewritten
# artifacts to refresh the baseline.  ONLY=<name> (space-separated to
# select several) runs a subset: `make bench ONLY=pipeline`.
bench:
	python -m repro bench --baseline benchmarks --tolerance 0.25 --out benchmarks $(foreach n,$(ONLY),--only $(n))

# The original pytest-benchmark microbenchmark suite (exploratory; no gate).
bench-pytest:
	python -m pytest benchmarks/ --benchmark-only -q
