PYTHONPATH := src
export PYTHONPATH

.PHONY: check test bench chaos

# The fast gate for every push: tier-1 minus the slow full-campaign
# tests, plus the parallel-campaign determinism regression.
check:
	python -m pytest -q -m "not slow"
	python -m pytest -q tests/evaluation/test_parallel_campaign.py

# Seeded API-plane chaos regression (severe profile, zero crashed runs).
chaos:
	python -m pytest -q -m "chaos and not slow"

# The complete tier-1 suite (what the roadmap's verify command runs).
test:
	python -m pytest -x -q

bench:
	python -m pytest benchmarks/ --benchmark-only -q
