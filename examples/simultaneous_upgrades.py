"""Two simultaneous rolling upgrades: the mixed-version hazard.

§V.C: "One of the most challenging faults is the ASG mixed version
error, which can be caused by two simultaneous rolling upgrades.  In a
large-scale deployment, this can happen quite easily if different
development teams push out changes independently."

Team A starts upgrading the cluster to v2; 150 seconds later Team B —
unaware of Team A — pushes v3 onto the *same* ASG.  Team B's launch
configuration overwrites Team A's, so the remaining replacements of Team
A's upgrade come up as v3: the fleet ends up with mixed versions relative
to Team A's intent.  POD-Diagnosis, watching Team A's operation, detects
the wrong-version instances and diagnoses the concurrent launch
configuration update.

Run:  python examples/simultaneous_upgrades.py
"""

from repro.logsys.record import LogStream
from repro.operations.rolling_upgrade import RollingUpgradeOperation, RollingUpgradeParams
from repro.testbed import build_testbed


def main() -> None:
    testbed = build_testbed(cluster_size=4, seed=41)
    cloud = testbed.cloud

    # Team B prepares its own release of the same application.
    ami_v3 = cloud.api("team-b").register_image("log-monitoring-app", "v3")["ImageId"]

    def team_b_push():
        yield testbed.engine.timeout(150)
        print(f"  !! team B pushes {ami_v3} onto asg-dsn (lc-app-v3)")
        stream_b = LogStream("asgard-team-b.log")
        params_b = RollingUpgradeParams(
            asg_name="asg-dsn",
            elb_name="elb-dsn",
            image_id=ami_v3,
            lc_name="lc-app-v3",
            instance_type="m1.small",
            key_name="key-prod",
            security_groups=["sg-web"],
        )
        client_b = cloud.client("asgard-team-b", latency_seed_offset=91)
        RollingUpgradeOperation(testbed.engine, client_b, stream_b, params_b, "upgrade-b").start()

    testbed.engine.process(team_b_push())

    print("team A upgrades asg-dsn to v2; team B will interfere at t+150s")
    operation = testbed.run_upgrade(trace_id="upgrade-a")

    versions = {}
    for instance in cloud.state.running_instances("asg-dsn"):
        versions.setdefault(instance.image_id, 0)
        versions[instance.image_id] += 1
    print(f"\nteam A's operation: {operation.status}")
    print(f"fleet versions    : {versions}  (team A wanted only {testbed.stack.ami_v2})")

    print(f"\nPOD-Diagnosis (watching team A) raised {len(testbed.pod.detections)} detections:")
    for detection in testbed.pod.detections[:5]:
        print(f"  t={detection.time:7.1f} {detection.detail} via {detection.cause}")

    causes = {}
    for report in testbed.pod.reports:
        for cause in report.root_causes:
            causes.setdefault(cause.node_id, cause.status)
    print("\ndiagnosed causes:")
    for node_id, status in causes.items():
        print(f"  - {node_id} ({status})")
    if "concurrent-upgrade" in causes or "lc-wrong-ami" in causes:
        print("\n=> the mixed-version hazard was detected and attributed to a"
              " concurrent launch-configuration change.")


if __name__ == "__main__":
    main()
