"""The assertion specification language (the paper's future work, built).

§VIII: "In order to simplify specifying boilerplate assertions, we are
designing an assertion specification language at the moment."  This
example declares the rolling upgrade's assertion set entirely from spec
strings, binds them to process steps, and evaluates them against a live
simulated cluster — including one that fails after a fault.

Run:  python examples/assertion_spec_demo.py
"""

from repro.assertions.base import AssertionEnvironment
from repro.assertions.consistent_api import ConsistentApiClient
from repro.assertions.evaluation import AssertionEvaluationService
from repro.assertions.spec import parse_assertion_spec
from repro.logsys.storage import CentralLogStorage
from repro.testbed import build_testbed

SPECS = [
    # (spec line, note)
    ("asg {asg_name} has {desired_capacity} running instances", "high-level count"),
    ("instance $instanceid matches target configuration", "per-node, field from log line"),
    ("asg {asg_name} uses correct ami", "single-field config check"),
    ("asg {asg_name} uses correct key_pair", "single-field config check"),
    ("resource ami {expected_image_id} exists", "resource availability"),
    ("elb {elb_name} serves at least {min_in_service} instances", "availability floor"),
]


def main() -> None:
    testbed = build_testbed(cluster_size=4, seed=31)
    # Bring the cluster to the target version first, so the target
    # configuration the specs compare against is the live one.
    testbed.run_upgrade()
    cloud = testbed.cloud
    client = ConsistentApiClient(cloud.engine, cloud.api("spec-demo"))
    env = AssertionEnvironment(
        engine=cloud.engine,
        client=client,
        monitor=cloud.monitor,
        config=testbed.pod_config.as_repository(),
    )
    service = AssertionEvaluationService(env, storage=CentralLogStorage())

    print("parsing assertion specs:")
    bound = []
    for spec, note in SPECS:
        assertion, static_params = parse_assertion_spec(spec)
        # Spec-built assertions of the same class share ids; register each
        # under a unique name derived from the spec.
        assertion.assertion_id = f"{assertion.assertion_id}#{len(bound)}"
        service.register(assertion)
        bound.append((assertion.assertion_id, static_params, spec))
        print(f"  {spec:58s} -> {type(assertion).__name__} {static_params} ({note})")

    print("\nevaluating against the healthy cluster:")
    instance_id = cloud.state.running_instances("asg-dsn")[0].instance_id
    for assertion_id, static_params, spec in bound:
        params = {**static_params, "instanceid": instance_id}
        result = cloud.engine.run(
            until=cloud.engine.process(service.evaluate_on_demand(assertion_id, params))
        )
        print(f"  [{'PASS' if result.passed else 'FAIL'}] {spec}")

    print("\ninjecting a wrong-AMI fault into the launch configuration...")
    cloud.injector.change_lc_ami("lc-app-v2", "ami-deadbeef")
    result = cloud.engine.run(
        until=cloud.engine.process(
            service.evaluate_on_demand(bound[2][0], {**bound[2][1]})
        )
    )
    print(f"  [{'PASS' if result.passed else 'FAIL'}] {bound[2][2]}")
    print(f"       -> {result.message}")


if __name__ == "__main__":
    main()
