"""Process mining walkthrough: logs -> clusters -> regexes -> model (§III.A).

Reproduces the paper's offline pipeline: collect Asgard-style logs from
several successful rolling upgrades, cluster lines by string distance,
derive regex transformation rules, tag traces, discover the Fig. 2
process model, and finally use the mined model for conformance checking
on a deliberately broken trace.

Run:  python examples/process_mining_demo.py
"""

from repro.logsys.patterns import PatternLibrary
from repro.logsys.record import LogRecord
from repro.logsys.storage import CentralLogStorage
from repro.process.conformance import ConformanceChecker
from repro.process.instance import ProcessInstance
from repro.process.mining.cluster import cluster_lines
from repro.process.mining.dfg import DirectlyFollowsGraph
from repro.process.mining.discovery import discover_model
from repro.process.mining.regexgen import derive_pattern
from repro.sim.clock import SimClock
from repro.testbed import Testbed


def collect_logs(n_runs: int = 4):
    """Step 0 — run successful upgrades and keep the raw log lines."""
    runs = []
    for seed in range(n_runs):
        testbed = Testbed(cluster_size=4, seed=700 + seed)
        testbed.run_upgrade(trace_id=f"run-{seed}")
        lines = [r.message for r in testbed.stream.records if "DEBUG" not in r.message]
        runs.append(lines)
    return runs


def main() -> None:
    runs = collect_logs()
    all_lines = [line for run in runs for line in run]
    print(f"collected {len(all_lines)} log lines from {len(runs)} successful upgrades\n")

    # Step 1 — cluster by masked string distance.
    clusters = cluster_lines(all_lines)
    print(f"step 1: {len(clusters)} clusters")
    for cluster in clusters:
        print(f"  [{len(cluster.lines):3d}] {cluster.name:42s} {cluster.representative[:60]}")

    # Step 2 — derive one regex transformation rule per cluster.
    patterns = [derive_pattern(cluster) for cluster in clusters]
    library = PatternLibrary(patterns)
    print("\nstep 2: derived regexes (first three):")
    for pattern in patterns[:3]:
        print(f"  {pattern.activity}: {pattern.regex[:84]}")

    # Step 3 — tag each run's lines and build activity traces.
    traces = []
    for run in runs:
        trace = [library.classify(line).activity for line in run]
        traces.append([a for a in trace if a is not None])
    print(f"\nstep 3: tagged {len(traces)} traces; first trace: {traces[0][:6]} ...")

    # Step 4 — discover the process model from the directly-follows graph.
    dfg = DirectlyFollowsGraph.from_traces(traces)
    model = discover_model(dfg, model_id="mined-rolling-upgrade")
    print(f"\nstep 4: discovered model with {len(model.activities)} activities,"
          f" {len(model.edges)} edges, loop edges {dfg.loop_edges()[:2]} ...")
    for index, trace in enumerate(traces):
        instance = ProcessInstance(model, f"verify-{index}")
        for activity in trace:
            assert instance.replay(activity).fit
    print("        every training trace replays with fitness 1.0")

    # Step 5 — conformance-check a broken trace on the mined model.
    print("\nstep 5: conformance checking a broken trace (terminate before deregister):")
    checker = ConformanceChecker(model, library, clock=SimClock(), storage=CentralLogStorage())
    broken = list(runs[0])
    # Swap a deregister/terminate pair: an out-of-order execution.
    dereg_index = next(i for i, l in enumerate(broken) if "Deregistered" in l)
    broken[dereg_index], broken[dereg_index + 1] = broken[dereg_index + 1], broken[dereg_index]
    for line in broken[:8]:
        record = LogRecord(time=0.0, source="asgard.log", message=line, tags=["trace:broken"])
        result = checker.check(record)
        flag = "" if result.status == "fit" else f"   <-- {result.status.upper()}"
        print(f"  [{result.status:5s}] {line[:72]}{flag}")


if __name__ == "__main__":
    main()
