"""A compact fault-injection study: the paper's §V campaign, scaled down.

Runs every one of the 8 fault types a few times (with mixed interference,
as in the paper), computes the Table I metrics and renders the Fig. 6/7
outputs.  The full-scale 160-run campaign lives in ``benchmarks/``; this
example keeps the run count small so it finishes in seconds.

Run:  python examples/fault_injection_study.py [runs_per_fault] [workers]

``workers`` fans the runs out across processes (-1 = all cores); the
results are bit-for-bit identical at any worker count.
"""

import sys

from repro.evaluation.campaign import Campaign, CampaignConfig
from repro.evaluation.figures import render_fig6, render_fig7, render_headline
from repro.evaluation.metrics import compute_metrics


def main(runs_per_fault: int = 4, workers: int = 1) -> None:
    config = CampaignConfig(
        runs_per_fault=runs_per_fault,
        large_cluster_runs=max(1, runs_per_fault // 5),
        seed=2014,
    )
    campaign = Campaign(config)
    total = runs_per_fault * 8
    print(f"running {total} fault-injection runs"
          f" ({runs_per_fault} per fault type, mixed interference)...\n")

    def progress(index, count, outcome):
        status = "detected" if outcome.fault_detected else "MISSED"
        correct = "+" if outcome.fault_diagnosed_correctly() else "-"
        interference = ",".join(t for t in outcome.truth if t != outcome.spec.fault_type) or "-"
        print(
            f"  [{index:3d}/{count}] {outcome.spec.run_id:26s} n={outcome.spec.cluster_size:<2d}"
            f" {status}/{correct} interference={interference}"
        )

    campaign.run(progress=progress, max_workers=workers)
    metrics = compute_metrics(campaign.outcomes)

    print()
    print(render_headline(metrics))
    print()
    print(render_fig6(metrics))
    print()
    print(render_fig7(metrics))


if __name__ == "__main__":
    main(
        int(sys.argv[1]) if len(sys.argv) > 1 else 4,
        int(sys.argv[2]) if len(sys.argv) > 2 else 1,
    )
