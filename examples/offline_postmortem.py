"""Offline post-mortem: answering what online diagnosis could not.

§VI of the paper lists two online blind spots: random terminations cannot
be attributed (CloudTrail delivers records up to 15 minutes late) and
transient faults vanish before on-demand tests run.  Both are answerable
after the fact.  This example:

1. runs an upgrade disturbed by a random termination — online diagnosis
   stops at ``instance-terminated-externally (undetermined)``;
2. re-opens the run with the :class:`OfflineAnalyzer`: CloudTrail has
   delivered, and the termination is attributed to its author;
3. demonstrates the transient-change post-mortem: a configuration flap
   the 30-second monitor crawl missed is recovered from the write
   history;
4. prints the merged per-trace timeline from central log storage.

Run:  python examples/offline_postmortem.py
"""

from repro.diagnosis.offline import OfflineAnalyzer
from repro.operations.interference import InterferencePlan, InterferenceScheduler
from repro.testbed import build_testbed


def main() -> None:
    testbed = build_testbed(cluster_size=4, seed=61)
    scheduler = InterferenceScheduler(testbed.engine, testbed.cloud, "asg-dsn", seed=61)
    scheduler.schedule(InterferencePlan(random_termination_at=110.0))
    operation_start = testbed.engine.now
    testbed.run_upgrade()

    print("online diagnosis verdicts:")
    for report in testbed.pod.reports:
        print(f"  {report.summary()}")

    analyzer = OfflineAnalyzer(
        storage=testbed.pod.storage,
        trail=testbed.cloud.trail,
        state=testbed.cloud.state,
        reports=testbed.pod.reports,
    )

    print("\noffline resolution of undetermined causes:")
    resolutions = analyzer.resolve_undetermined(since=operation_start)
    if not resolutions:
        print("  (nothing was undetermined)")
    for resolution in resolutions:
        marker = "RESOLVED" if resolution.resolved else "still open"
        print(f"  [{marker}] {resolution.node_id}: {resolution.explanation}")

    print("\ntransient-change post-mortem (flap shorter than the monitor crawl):")
    flap_start = testbed.engine.now
    record = testbed.cloud.injector.change_lc_ami("lc-app-v2", "ami-flap")
    testbed.engine.run(until=testbed.engine.now + 4)
    testbed.cloud.injector.revert(record)
    for flap in analyzer.find_transient_changes("launch_configuration", "lc-app-v2", since=flap_start):
        print(
            f"  changed at t={flap['changed_at']:.0f}, reverted {flap['duration']:.0f}s later"
            f" (transient AMI: {flap['transient_value']['ImageId']})"
        )

    print("\nmerged timeline (first 12 events):")
    for entry in analyzer.timeline("upgrade-1")[:12]:
        print(f"  t={entry.time:8.1f} [{entry.kind:11s}] {entry.summary[:80]}")

    print()
    print(analyzer.summary("upgrade-1"))


if __name__ == "__main__":
    main()
