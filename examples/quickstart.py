"""Quickstart: watch a rolling upgrade, inject a fault, read the diagnosis.

Builds the simulated AWS testbed (4-instance ASG behind an ELB), attaches
POD-Diagnosis to the operation log, runs one clean rolling upgrade, then a
second run with a wrong-AMI fault injected mid-flight — and prints the
detection and root-cause diagnosis exactly as the paper's §III.B.4 log
excerpt shows.

Run:  python examples/quickstart.py
"""

from repro import build_testbed


def clean_run() -> None:
    print("=" * 72)
    print("1. Clean rolling upgrade (v1 -> v2), POD-Diagnosis watching")
    print("=" * 72)
    testbed = build_testbed(cluster_size=4, seed=1)
    operation = testbed.run_upgrade()

    print(f"\noperation status : {operation.status} in {operation.duration:.0f}s (virtual)")
    print(f"detections       : {len(testbed.pod.detections)} (expected: 0)")
    print(f"trace fitness    : {testbed.pod.conformance.fitness_of('upgrade-1'):.2f}")
    print(f"assertions run   : {len(testbed.pod.assertions.results)}, all passed")
    print("\noperation log (first 8 lines):")
    for record in testbed.stream.records[:8]:
        print(f"  [{record.timestamp}] {record.message}")


def faulty_run() -> None:
    print()
    print("=" * 72)
    print("2. Same upgrade with a wrong-AMI fault injected at t+40s")
    print("=" * 72)
    testbed = build_testbed(cluster_size=4, seed=2)

    def inject():
        yield testbed.engine.timeout(40)
        rogue = testbed.cloud.api("rogue-team").register_image("rogue-release", "v9")["ImageId"]
        testbed.cloud.injector.change_lc_ami("lc-app-v2", rogue)
        print(f"  !! fault injected: launch configuration now points at {rogue}")

    testbed.engine.process(inject())
    testbed.run_upgrade()

    print(f"\ndetections ({len(testbed.pod.detections)}):")
    for detection in testbed.pod.detections[:4]:
        print(
            f"  t={detection.time:7.1f}  {detection.kind:11s} {detection.detail}"
            f" (trigger: {detection.cause}, step: {detection.step})"
        )

    report = testbed.pod.reports[0]
    print(f"\nfirst diagnosis ({report.duration:.2f}s virtual):")
    print(f"  trigger : {report.trigger_detail} at step {report.step}")
    print(f"  checked : {len(report.tests)} diagnostic tests,"
          f" {report.excluded_count} fault(s) excluded")
    for cause in report.root_causes:
        print(f"  root cause -> {cause.node_id} ({cause.status}): {cause.description}")

    print("\ndiagnosis log (paper-style):")
    for record in testbed.pod.storage.query(type="diagnosis")[:10]:
        print(f"  {record.message}")


if __name__ == "__main__":
    clean_run()
    faulty_run()
