"""Concurrent interference: the confounded ecosystem of §V.B.

Runs a rolling upgrade while three confounders execute concurrently —
a legitimate scale-in, a random instance termination, and a second team
pushing the shared account towards its instance limit — and shows how
POD-Diagnosis attributes each detected anomaly:

- the scale-in is diagnosed to its root cause (``asg-scale-in``);
- the random termination is detected but its author stays undetermined
  (CloudTrail delivery delay — exactly the paper's limitation);
- the account-limit pressure surfaces as ``account-limit-exceeded``
  (the root cause the paper added to its trees after the fact).

Run:  python examples/concurrent_interference.py
"""

from repro.operations.interference import InterferencePlan, InterferenceScheduler, SecondTeam
from repro.testbed import build_testbed


def run_scenario(title, plan, seed, with_second_team=False, max_instances=40):
    print("=" * 72)
    print(title)
    print("=" * 72)
    testbed = build_testbed(cluster_size=4, seed=seed, max_instances=max_instances)
    second_team = None
    if with_second_team:
        second_team = SecondTeam(testbed.engine, testbed.cloud, seed=seed)
        second_team.provision(initial_capacity=2)
    scheduler = InterferenceScheduler(testbed.engine, testbed.cloud, "asg-dsn", seed=seed)
    scheduler.schedule(plan, second_team)
    operation = testbed.run_upgrade()

    print(f"operation: {operation.status}; interference events: {scheduler.events}")
    print(f"detections: {len(testbed.pod.detections)}")
    causes = {}
    for report in testbed.pod.reports:
        for cause in report.root_causes:
            causes.setdefault(cause.node_id, cause.status)
    if causes:
        print("diagnosed causes:")
        for node_id, status in causes.items():
            print(f"  - {node_id} ({status})")
    else:
        print("diagnosed causes: none (all diagnoses returned no root cause)")
    print()


def main() -> None:
    run_scenario(
        "1. Concurrent scale-in during the upgrade",
        InterferencePlan(scale_in_at=90.0),
        seed=21,
    )
    run_scenario(
        "2. Random instance termination (infrastructure uncertainty)",
        InterferencePlan(random_termination_at=120.0),
        seed=22,
    )
    run_scenario(
        "3. Second team exhausts the shared account's instance limit",
        # Negative headroom: the second team wants more capacity than the
        # account holds, so it stays hungry and races the upgrade for
        # every freed slot.
        InterferencePlan(second_team_pressure_at=30.0, second_team_target_headroom=-6),
        seed=23,
        with_second_team=True,
        max_instances=12,
    )


if __name__ == "__main__":
    main()
