"""Targeted healing: diagnose, then fix — no rollback.

The paper's introduction: tools like CloudFormation or Chef offer "only
complete rollback/opportunistic retry — if something goes wrong in the
middle of the operations", and "the default recovery is usually a
complete but equally risky rollback operation".  Root-cause diagnosis
enables the alternative: a *targeted* fix of exactly what broke, while
the upgrade keeps running.

Scenario: a concurrent team corrupts the launch configuration's AMI
mid-upgrade.  POD-Diagnosis detects the wrong-version instance, walks the
fault tree to ``lc-wrong-ami``, and the remediation layer restores the
launch configuration — after which the still-running rolling upgrade
finishes on the correct version by itself.

Run:  python examples/targeted_healing.py
"""

from repro.diagnosis.remediation import apply, plans_for_report
from repro.testbed import build_testbed


def main() -> None:
    testbed = build_testbed(cluster_size=4, seed=51)
    healed = []

    def inject_then_heal():
        yield testbed.engine.timeout(40)
        rogue = testbed.cloud.api("rogue-team").register_image("rogue", "v9")["ImageId"]
        testbed.cloud.injector.change_lc_ami("lc-app-v2", rogue)
        print(f"  !! t={testbed.engine.now:.0f}: launch configuration corrupted -> {rogue}")

        while not testbed.pod.reports:
            yield testbed.engine.timeout(5)
        report = testbed.pod.reports[0]
        print(f"\n  diagnosis at t={testbed.engine.now:.0f}: {report.summary()}")

        params = testbed.pod_config.as_repository()
        params["expected_security_group"] = params["expected_security_groups"][0]
        for plan in plans_for_report(report, params):
            marker = "auto" if plan.automatable else "needs human"
            print(f"  remediation [{marker}]: {plan.action} — {plan.description}")
            if plan.automatable:
                done = apply(plan, testbed.cloud.api("remediation"))
                healed.extend(done)
                print(f"    applied: {', '.join(done)}")

    testbed.engine.process(inject_then_heal())
    print("rolling upgrade v1 -> v2 with mid-flight corruption and healing:")
    operation = testbed.run_upgrade()

    lc = testbed.cloud.state.get("launch_configuration", "lc-app-v2")
    versions = sorted(
        {i.image_id for i in testbed.cloud.state.running_instances("asg-dsn")}
    )
    print(f"\noperation        : {operation.status} (no rollback performed)")
    print(f"healing actions  : {healed}")
    print(f"final LC image   : {lc.image_id} (target {testbed.stack.ami_v2})")
    print(f"fleet versions   : {versions}")
    wrong = [v for v in versions if v != testbed.stack.ami_v2]
    if wrong:
        print(f"note: {len(wrong)} stray version(s) remain — instances launched while"
              " the LC was corrupted; re-running the upgrade replaces them.")


if __name__ == "__main__":
    main()
