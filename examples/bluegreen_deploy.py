"""Blue/green deployment under POD-Diagnosis: generality in action.

§III.C: the per-operation effort (model, patterns, bindings, watchdog
calibration) is spent once per operation *type*; the fault trees and the
diagnosis machinery are shared.  This example deploys v2 as a parallel
green stack — a completely different process from the rolling upgrade —
watched by the same POD-Diagnosis service via a different
OperationProfile, and shows the same fault trees diagnosing a green-stack
provisioning failure.

Run:  python examples/bluegreen_deploy.py
"""

from repro.cloud.api import TimedCloudClient
from repro.logsys.record import LogStream
from repro.operations.bluegreen import BlueGreenOperation, BlueGreenParams, blue_green_profile
from repro.pod.config import PodConfig
from repro.pod.service import PODDiagnosis
from repro.testbed import build_testbed


def deploy(testbed, pod, trace_id):
    params = BlueGreenParams(
        blue_asg="asg-dsn",
        green_asg="asg-dsn-green",
        elb_name="elb-dsn",
        image_id=testbed.stack.ami_v2,
        lc_name="lc-green-v2",
        instance_type="m1.small",
        key_name="key-prod",
        security_groups=["sg-web"],
        capacity=4,
    )
    stream = LogStream("bluegreen.log")
    pod.watch(stream, trace_id)
    client = TimedCloudClient(testbed.engine, testbed.cloud.api("deployer"))
    operation = BlueGreenOperation(testbed.engine, client, stream, params, trace_id)
    operation.start()
    testbed.engine.run(until=testbed.engine.now + 1200)
    pod.timers.stop_all()
    testbed.engine.run(until=testbed.engine.now + 60)
    pod.quiesce()
    return operation, stream


def pod_for(testbed):
    config = PodConfig(
        asg_name="asg-dsn-green",
        elb_name="elb-dsn",
        desired_capacity=4,
        expected_image_id=testbed.stack.ami_v2,
        expected_key_name="key-prod",
        expected_instance_type="m1.small",
        expected_security_groups=["sg-web"],
        lc_name="lc-green-v2",
        watchdog_interval=175.0,
        operation_start=testbed.engine.now,
    )
    return PODDiagnosis(testbed.cloud, config, profile=blue_green_profile(), seed=testbed.seed)


def main() -> None:
    print("=" * 72)
    print("1. Clean blue/green deployment (v1 blue -> v2 green)")
    print("=" * 72)
    testbed = build_testbed(cluster_size=4, seed=81)
    pod = pod_for(testbed)
    operation, stream = deploy(testbed, pod, "bg-clean")
    print(f"operation : {operation.status}")
    print(f"detections: {len(pod.detections)} (expected 0)")
    print(f"fitness   : {pod.conformance.fitness_of('bg-clean'):.2f} on the blue/green model")
    print("trace:")
    for record in stream.records:
        print(f"  {record.message[:84]}")

    print()
    print("=" * 72)
    print("2. Same deployment with the security group deleted pre-launch")
    print("=" * 72)
    testbed = build_testbed(cluster_size=4, seed=82)
    pod = pod_for(testbed)

    def inject():
        yield testbed.engine.timeout(1)
        testbed.cloud.injector.make_security_group_unavailable("sg-web")
        print("  !! security group sg-web deleted")

    testbed.engine.process(inject())
    operation, _stream = deploy(testbed, pod, "bg-faulty")
    print(f"operation : {operation.status}")
    print(f"detections: {[(d.detail, d.cause) for d in pod.detections[:3]]}")
    for report in pod.reports[:1]:
        print(f"diagnosis : {report.summary()}")
    print("\n=> the same fault-tree knowledge base diagnosed a different operation.")


if __name__ == "__main__":
    main()
